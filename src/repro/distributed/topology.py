"""Two-level cluster topology and pluggable collective-algorithm models.

The paper's speed-ups come from two very different fabrics — a TCP 10/25 Gbps
Ethernet cluster of single-GPU servers (Appendix D, Cluster 1) and a 100 Gbps
InfiniBand fabric inside one 8-GPU node (Cluster 2).  A single flat
:class:`~repro.distributed.network.NetworkModel` link cannot express the
difference, nor can one closed form express the algorithms real stacks choose
per fabric (ring vs recursive doubling, flat vs hierarchical sparse
all-gather).

This module models both dimensions:

* :class:`ClusterTopology` — ``num_nodes`` x ``devices_per_node`` workers with
  an *intra-node* link (NVLink/InfiniBand inside a server) and an *inter-node*
  link (the Ethernet between servers).  ``devices_per_node == 1`` or
  ``num_nodes == 1`` degenerates to the old single-level model.
* Collective algorithms — ``ring-allreduce``, ``recursive-doubling``,
  ``flat-allgather`` and ``hierarchical`` — each returning a
  :class:`CollectiveCost` whose per-phase breakdown sums exactly to the total,
  so the event-driven iteration schedule can place every phase on the network
  lane.
* :class:`CollectiveModel` — a topology plus one algorithm choice per
  operation; the single-level case with ``ring-allreduce``/``flat-allgather``
  reproduces ``NetworkModel.allreduce_time``/``allgather_time`` bit-for-bit
  (the golden tests pin this), which is what makes the refactor safe.

Sparse all-gather payloads grow with the participant count (every worker
contributes its own (index, value) selection), which is why the hierarchical
algorithm helps: the inter-node ring exchanges one node-aggregated payload per
node instead of one per device.  The price is that the aggregate must also be
distributed *inside* each node, so hierarchical only wins when the intra-node
link is sufficiently faster than the inter-node link — see
:func:`hierarchical_crossover_factor` for the exact sufficient condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NODE_INFINIBAND_100G,
    NetworkModel,
    lookup_preset,
)

#: Collective operations the algorithm layer knows how to price.
COLLECTIVE_OPS: tuple[str, ...] = ("allreduce", "allgather")

#: Index-overlap assumptions the sparse-aggregate dedup model supports.
DEDUP_ASSUMPTIONS: tuple[str, ...] = ("uniform", "identical", "disjoint")


@dataclass(frozen=True)
class SparseAggregateModel:
    """Expected size of a deduplicated union of sparse top-k selections.

    When a node leader reduces its ``D`` devices' (index, value) payloads
    before the inter-node exchange, overlapping indices collapse into one
    entry, so the node aggregate is the *union* of the selections — between
    one worker's payload (everyone picked the same indices) and ``D`` payloads
    (nobody overlapped).  Where the union lands depends on how correlated the
    selections are; this model offers the three standard assumptions:

    ``"uniform"``
        Each worker's k indices are an independent uniform draw from the n
        bucket slots.  The expected union is the closed form
        ``n * (1 - (1 - k/n)^D)``, i.e. a per-worker multiplier of
        ``(1 - (1 - rho)^D) / rho`` at density ``rho = k/n``.  Real top-k
        gradients overlap *more* than uniform draws, so this is the
        conservative default.
    ``"identical"``
        Every worker selects exactly the same k indices (perfectly correlated
        gradients) — the lower bound: the union is one worker's payload.
    ``"disjoint"``
        No two workers share an index — the upper bound: the union is the
        plain concatenation, capped at the dense bucket size.
    """

    assumption: str = "uniform"

    def __post_init__(self) -> None:
        if self.assumption not in DEDUP_ASSUMPTIONS:
            raise ValueError(
                f"unknown dedup assumption {self.assumption!r}; "
                f"known: {list(DEDUP_ASSUMPTIONS)}"
            )

    @staticmethod
    def _check(density: float, participants: int) -> None:
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if participants < 1:
            raise ValueError("participants must be >= 1")

    def union_factor(self, density: float, participants: int) -> float:
        """Expected union size as a multiple of one worker's selection.

        Always in ``[1, min(participants, 1/density)]``: the union can never
        be smaller than one contribution nor larger than the concatenation or
        the dense bucket.
        """
        self._check(density, participants)
        if participants == 1:
            return 1.0
        cap = min(float(participants), 1.0 / density)
        if self.assumption == "identical":
            return 1.0
        if self.assumption == "disjoint":
            return cap
        return min((1.0 - (1.0 - density) ** participants) / density, cap)

    def union_payload_bytes(self, payload_bytes: float, density: float, participants: int) -> float:
        """Expected deduplicated aggregate of ``participants`` payloads of ``payload_bytes``."""
        _check_payload(payload_bytes)
        return payload_bytes * self.union_factor(density, participants)

    def dedup_ratio(self, density: float, participants: int) -> float:
        """Concatenated-over-deduplicated size: how much the reduce shrinks the aggregate."""
        return participants / self.union_factor(density, participants)


@dataclass(frozen=True)
class ClusterTopology:
    """A two-level cluster: ``num_nodes`` servers with ``devices_per_node`` workers each.

    ``intra_node`` prices traffic between devices inside one server,
    ``inter_node`` prices traffic between servers.  Either level may be
    trivial (``num_nodes == 1`` or ``devices_per_node == 1``), in which case
    the topology is *single-level* and every collective runs over the one
    non-trivial link.
    """

    num_nodes: int
    devices_per_node: int
    inter_node: NetworkModel
    intra_node: NetworkModel
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")

    @property
    def num_workers(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def is_single_level(self) -> bool:
        """True when at most one of the two levels has more than one participant."""
        return self.num_nodes == 1 or self.devices_per_node == 1

    @property
    def bottleneck_link(self) -> NetworkModel:
        """The link a flat (topology-oblivious) collective is gated by.

        A ring laid out node-by-node advances every step at the pace of its
        slowest hop: the inter-node link whenever the ring spans several
        nodes, the intra-node link only inside a single server.
        """
        return self.inter_node if self.num_nodes > 1 else self.intra_node

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, *, name: str = "") -> "ClusterTopology":
        """The degenerate single-level topology: every worker on one shared link."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        return cls(
            num_nodes=num_workers,
            devices_per_node=1,
            inter_node=network,
            intra_node=network,
            name=name or f"flat-{network.name}-x{num_workers}",
        )


@dataclass(frozen=True)
class CollectivePhase:
    """One phase of a collective: where it runs, how long, how much it moves.

    ``start`` is the phase's relative start offset within the collective:
    ``None`` means "serial — right after the previous phase" (the pre-pipeline
    contract), an explicit float places the phase on a pipelined timeline
    where phases on *different* links may overlap.  ``chunk`` identifies which
    payload chunk a pipelined phase carries (``None`` for unchunked phases).
    """

    name: str
    link: str
    seconds: float
    volume_bytes: float = 0.0
    start: float | None = None
    chunk: int | None = None


@dataclass(frozen=True)
class CollectiveCost:
    """Per-phase cost breakdown of one collective operation.

    For serial phases (``start is None`` throughout — every pre-pipeline
    algorithm), ``total`` is the plain sum of the phase durations: phase *k+1*
    consumes phase *k*'s output, which is what lets the schedule simulator
    place them back-to-back on the network lane.  Chunk-pipelined costs carry
    explicitly placed phases instead, and ``total`` is the makespan — the end
    of the last phase, with same-link phases still strictly serial.
    """

    op: str
    algorithm: str
    num_workers: int
    phases: tuple[CollectivePhase, ...] = ()
    #: Number of payload chunks the phases were pipelined over (1 = serial).
    pipeline_chunks: int = 1
    #: Concatenated-over-deduplicated node-aggregate size achieved by the
    #: sparse dedup model (1.0 when dedup is off or structurally impossible).
    dedup_ratio: float = 1.0

    @property
    def total(self) -> float:
        total = 0.0
        cursor = 0.0
        for phase in self.phases:
            start = cursor if phase.start is None else phase.start
            end = start + phase.seconds
            cursor = end
            if end > total:
                total = end
        return total

    @property
    def is_pipelined(self) -> bool:
        """True when any phase carries an explicit pipelined placement."""
        return any(phase.start is not None for phase in self.phases)

    @property
    def serial_seconds(self) -> float:
        """The back-to-back traversal time: plain sum of every phase duration."""
        total = 0.0
        for phase in self.phases:
            total += phase.seconds
        return total

    @property
    def volume_bytes(self) -> float:
        return sum(phase.volume_bytes for phase in self.phases)


def _check_payload(num_bytes: float) -> None:
    if num_bytes < 0:
        raise ValueError("payload bytes must be non-negative")


def validate_pipeline_chunks(pipeline_chunks: int) -> int:
    """Return ``pipeline_chunks`` if it is a valid chunk count, else raise."""
    if not isinstance(pipeline_chunks, int) or pipeline_chunks < 1:
        raise ValueError(f"pipeline_chunks must be a positive integer, got {pipeline_chunks!r}")
    return pipeline_chunks


@dataclass(frozen=True)
class _PhaseSpec:
    """Serial description of one collective phase, ready to be chunk-pipelined.

    ``steps`` messages of ``step_bytes`` each over ``link``; the serial
    duration is ``steps * (latency + step_bytes / bandwidth)``, and splitting
    the payload into ``C`` chunks makes each chunk cost
    ``steps * (latency + (step_bytes / C) / bandwidth)`` — the latency is paid
    per chunk, which is why pipelining only wins when the overlap across
    links recovers more than the extra message starts.
    """

    name: str
    link: NetworkModel
    steps: int
    step_bytes: float
    volume_bytes: float

    def chunk_seconds(self, pipeline_chunks: int) -> float:
        return self.steps * (
            self.link.latency_s + (self.step_bytes / pipeline_chunks) / self.link.bytes_per_second
        )


def _pipeline_phases(
    specs: list[_PhaseSpec], serial: list[CollectivePhase], pipeline_chunks: int
) -> list[CollectivePhase]:
    """Chunk-pipeline a multi-phase collective, falling back to serial when it loses.

    Chunk *c*'s phase *p* starts once the same link has drained chunk *c-1*'s
    phase *p* and phase *p-1* has delivered chunk *c* — the classic software
    pipeline, whose makespan is latency + max-dominated instead of a pure sum.
    Because every chunk pays each phase's message latencies again, chunking a
    single-phase (or latency-bound) collective is a strict loss; this helper
    then returns the serial phases unchanged, so the pipelined cost is never
    worse than the serial one.
    """
    if not specs or pipeline_chunks == 1:
        return serial
    serial_total = 0.0
    for phase in serial:
        serial_total += phase.seconds
    chunk_seconds = [spec.chunk_seconds(pipeline_chunks) for spec in specs]
    # Greedy earliest-start list scheduling: an operation (chunk c, phase p)
    # becomes ready when phase p-1 has delivered chunk c, and every link
    # serves its queue work-conservingly — one transfer at a time, earliest
    # ready first.  Tracking occupancy per *link* (not per phase) matters
    # because several phases may share a fabric (e.g. the hierarchical
    # all-gather's intra-node gather and broadcast), and two chunks' phases
    # must never overlap on one wire.
    spans: dict[tuple[int, int], tuple[float, float]] = {}
    link_free: dict[str, float] = {}
    pending = [(chunk, p) for chunk in range(pipeline_chunks) for p in range(len(specs))]
    while pending:
        best = None
        for chunk, p in pending:
            if p > 0 and (chunk, p - 1) not in spans:
                continue
            ready = spans[(chunk, p - 1)][1] if p > 0 else 0.0
            start = max(ready, link_free.get(specs[p].link.name, 0.0))
            key = (start, chunk, p)
            if best is None or key < best[0]:
                best = (key, chunk, p, start)
        _, chunk, p, start = best
        end = start + chunk_seconds[p]
        spans[(chunk, p)] = (start, end)
        link_free[specs[p].link.name] = end
        pending.remove((chunk, p))
    makespan = max(end for _, end in spans.values())
    if makespan >= serial_total:
        return serial
    return [
        CollectivePhase(
            name=specs[p].name,
            link=specs[p].link.name,
            seconds=chunk_seconds[p],
            volume_bytes=specs[p].volume_bytes / pipeline_chunks,
            start=spans[(chunk, p)][0],
            chunk=chunk,
        )
        for chunk in range(pipeline_chunks)
        for p in range(len(specs))
    ]


class CollectiveAlgorithm:
    """Base class: prices one or both collective ops over a :class:`ClusterTopology`.

    ``density``, ``dedup`` and ``pipeline_chunks`` are accepted by every
    algorithm so :class:`CollectiveModel` can thread them uniformly; only the
    algorithms with a per-node reduce point (hierarchical) and phases on more
    than one link can act on them — single-link collectives have nothing to
    deduplicate or overlap, so the knobs are documented no-ops there.
    """

    name: str = ""
    supported_ops: tuple[str, ...] = ()
    #: Instance-level knob defaults, overridable per :meth:`cost` call.
    pipeline_chunks: int = 1
    dedup: SparseAggregateModel | None = None

    def cost(
        self,
        topology: ClusterTopology,
        op: str,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int | None = None,
    ) -> CollectiveCost:
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {op!r}; known: {list(COLLECTIVE_OPS)}")
        if op not in self.supported_ops:
            raise ValueError(
                f"algorithm {self.name!r} does not model {op!r}; "
                f"it supports {list(self.supported_ops)}"
            )
        _check_payload(num_bytes)
        if pipeline_chunks is None:
            pipeline_chunks = self.pipeline_chunks
        validate_pipeline_chunks(pipeline_chunks)
        if dedup is None:
            dedup = self.dedup
        phases, dedup_ratio = getattr(self, "_" + op)(
            topology, num_bytes, density=density, dedup=dedup, pipeline_chunks=pipeline_chunks
        )
        phases = tuple(phases)
        # Report the chunk count actually priced: a latency-bound fallback to
        # serial phases (or an algorithm with nothing to pipeline) is 1-chunk
        # pricing no matter what the caller asked for.
        priced_chunks = pipeline_chunks if any(p.start is not None for p in phases) else 1
        return CollectiveCost(
            op=op,
            algorithm=self.name,
            num_workers=topology.num_workers,
            phases=phases,
            pipeline_chunks=priced_chunks,
            dedup_ratio=dedup_ratio,
        )


class RingAllreduce(CollectiveAlgorithm):
    """Ring all-reduce: reduce-scatter then all-gather, ``2(N-1)`` chunk steps.

    On a single-level topology the two phases sum exactly to
    ``NetworkModel.allreduce_time`` (each phase is ``(N-1)`` steps of one
    ``1/N`` chunk; doubling a float is exact, so the split is lossless).
    """

    name = "ring-allreduce"
    supported_ops = ("allreduce",)

    def _allreduce(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        chunk = num_bytes / n
        seconds = (n - 1) * (link.latency_s + chunk / link.bytes_per_second)
        volume = (n - 1) * chunk
        return [
            CollectivePhase("reduce-scatter", link.name, seconds, volume),
            CollectivePhase("ring-allgather", link.name, seconds, volume),
        ], 1.0


class RecursiveDoubling(CollectiveAlgorithm):
    """Recursive doubling: ``ceil(log2 N)`` rounds of pairwise exchange.

    All-reduce exchanges the full buffer every round (few latencies, more
    bytes — the latency-bound regime ring all-reduce loses in).  All-gather
    doubles the gathered block every round, so the total volume matches the
    ring's ``(N-1)`` payloads while paying only ``log2 N`` latencies.
    """

    name = "recursive-doubling"
    supported_ops = ("allreduce", "allgather")

    def _allreduce(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        return [
            CollectivePhase(
                f"round-{k}",
                link.name,
                link.latency_s + num_bytes / link.bytes_per_second,
                num_bytes,
            )
            for k in range(rounds)
        ], 1.0

    def _allgather(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        phases = []
        for k in range(rounds):
            block = min(2**k, n - 2**k) * num_bytes
            phases.append(
                CollectivePhase(
                    f"round-{k}",
                    link.name,
                    link.latency_s + block / link.bytes_per_second,
                    block,
                )
            )
        return phases, 1.0


class FlatAllgather(CollectiveAlgorithm):
    """Topology-oblivious ring all-gather: ``N-1`` steps of one payload each.

    The single-level case is, expression for expression, the old
    ``NetworkModel.allgather_time`` closed form; on a multi-node topology
    every step is gated by the inter-node hop (see
    :attr:`ClusterTopology.bottleneck_link`).
    """

    name = "flat-allgather"
    supported_ops = ("allgather",)

    def _allgather(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        steps = n - 1
        seconds = steps * (link.latency_s + num_bytes / link.bytes_per_second)
        return [CollectivePhase("ring-allgather", link.name, seconds, steps * num_bytes)], 1.0


class Hierarchical(CollectiveAlgorithm):
    """Two-level collective: intra-node reduce/gather → inter-node exchange → intra-node broadcast.

    *All-gather* (sparse payloads, one per worker): each node ring-gathers its
    ``D`` device payloads to a leader over the intra-node link, the ``M``
    leaders ring-all-gather their ``D``-payload aggregates over the inter-node
    link, and each leader broadcasts the full ``N``-payload result back to its
    devices.  The inter-node ring thus runs ``M-1`` steps instead of ``N-1``
    and its sparse volume grows with the *node* count, not the device count.

    *All-reduce* (dense): binomial-tree reduce to the node leader, ring
    all-reduce among leaders, binomial broadcast back — volume does not grow
    with participants, so the win is purely fewer inter-node latencies/steps.

    Degenerate cases collapse exactly: ``devices_per_node == 1`` leaves only
    the inter-node phase (identical to the flat/ring algorithm), ``num_nodes
    == 1`` leaves only the intra-node phases, and one worker costs zero.

    Two knobs refine the sparse all-gather beyond the PR-3 serial pricing:

    * ``dedup`` + ``density`` — the node leader's reduce deduplicates
      overlapping indices before the inter-node exchange, so the node
      aggregate shrinks from ``D`` payloads to the expected union
      (:class:`SparseAggregateModel`), and the final broadcast ships the
      global union instead of the raw ``N - 1``-payload concatenation.  The
      no-dedup case matches the disjoint-union bound while the dense-bucket
      cap is slack (density <= 1/participants); past it, even disjoint
      selections cannot exceed the bucket, so ``disjoint`` prices lower.
    * ``pipeline_chunks`` — the payload is split into chunks and the
      intra/inter phases overlap chunk-by-chunk, so the cost becomes latency
      + max-dominated instead of a pure phase sum.  ``pipeline_chunks=1`` (or
      any chunking that loses to the extra message latencies) keeps the
      serial phases bit-for-bit.
    """

    name = "hierarchical"
    supported_ops = ("allreduce", "allgather")

    def __init__(
        self,
        pipeline_chunks: int = 1,
        dedup: SparseAggregateModel | None = None,
    ) -> None:
        self.pipeline_chunks = validate_pipeline_chunks(pipeline_chunks)
        self.dedup = dedup

    def _allgather(
        self,
        topology: ClusterTopology,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int = 1,
    ):
        m, d, n = topology.num_nodes, topology.devices_per_node, topology.num_workers
        intra, inter = topology.intra_node, topology.inter_node
        # The per-node reduce dedups d overlapping selections into one node
        # aggregate; the final broadcast ships the n-worker global union.  The
        # no-dedup aggregates (d payloads, n - 1 payloads) coincide with the
        # disjoint-union bound until its dense-bucket cap bites (density >
        # 1/participants), which is why both paths share one formula pair.
        dedup_ratio = 1.0
        node_factor = float(d)
        broadcast_factor = float(n - 1)
        if dedup is not None and density is not None and d > 1:
            node_factor = dedup.union_factor(density, d)
            broadcast_factor = dedup.union_factor(density, n) - 1.0
            dedup_ratio = d / node_factor
        phases = []
        specs = []
        if d > 1:
            seconds = (d - 1) * (intra.latency_s + num_bytes / intra.bytes_per_second)
            phases.append(
                CollectivePhase("intra-gather", intra.name, seconds, (d - 1) * num_bytes)
            )
            specs.append(_PhaseSpec("intra-gather", intra, d - 1, num_bytes, (d - 1) * num_bytes))
        if m > 1:
            node_payload = node_factor * num_bytes
            seconds = (m - 1) * (inter.latency_s + node_payload / inter.bytes_per_second)
            phases.append(
                CollectivePhase("inter-allgather", inter.name, seconds, (m - 1) * node_payload)
            )
            specs.append(
                _PhaseSpec("inter-allgather", inter, m - 1, node_payload, (m - 1) * node_payload)
            )
        if d > 1:
            gathered = broadcast_factor * num_bytes
            seconds = intra.latency_s + gathered / intra.bytes_per_second
            phases.append(CollectivePhase("intra-broadcast", intra.name, seconds, gathered))
            specs.append(_PhaseSpec("intra-broadcast", intra, 1, gathered, gathered))
        if pipeline_chunks > 1:
            phases = _pipeline_phases(specs, phases, pipeline_chunks)
        return phases, dedup_ratio

    def _allreduce(
        self,
        topology: ClusterTopology,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int = 1,
    ):
        m, d = topology.num_nodes, topology.devices_per_node
        intra, inter = topology.intra_node, topology.inter_node
        phases = []
        specs = []
        tree_rounds = math.ceil(math.log2(d)) if d > 1 else 0
        tree_seconds = tree_rounds * (intra.latency_s + num_bytes / intra.bytes_per_second)
        if d > 1:
            phases.append(
                CollectivePhase("intra-reduce", intra.name, tree_seconds, tree_rounds * num_bytes)
            )
            specs.append(
                _PhaseSpec("intra-reduce", intra, tree_rounds, num_bytes, tree_rounds * num_bytes)
            )
        if m > 1:
            chunk = num_bytes / m
            seconds = 2 * (m - 1) * (inter.latency_s + chunk / inter.bytes_per_second)
            phases.append(
                CollectivePhase("inter-allreduce", inter.name, seconds, 2 * (m - 1) * chunk)
            )
            specs.append(
                _PhaseSpec("inter-allreduce", inter, 2 * (m - 1), chunk, 2 * (m - 1) * chunk)
            )
        if d > 1:
            phases.append(
                CollectivePhase(
                    "intra-broadcast", intra.name, tree_seconds, tree_rounds * num_bytes
                )
            )
            specs.append(
                _PhaseSpec(
                    "intra-broadcast", intra, tree_rounds, num_bytes, tree_rounds * num_bytes
                )
            )
        if pipeline_chunks > 1:
            phases = _pipeline_phases(specs, phases, pipeline_chunks)
        return phases, 1.0


#: Pluggable collective algorithms, keyed by name.
COLLECTIVE_ALGORITHMS: dict[str, CollectiveAlgorithm] = {
    algo.name: algo
    for algo in (RingAllreduce(), RecursiveDoubling(), FlatAllgather(), Hierarchical())
}


def get_collective_algorithm(name: str, *, op: str | None = None) -> CollectiveAlgorithm:
    """Look up a collective algorithm by name, optionally requiring ``op`` support."""
    key = name.lower()
    if key not in COLLECTIVE_ALGORITHMS:
        raise ValueError(
            f"unknown collective algorithm {name!r}; known: {sorted(COLLECTIVE_ALGORITHMS)}"
        )
    algorithm = COLLECTIVE_ALGORITHMS[key]
    if op is not None and op not in algorithm.supported_ops:
        raise ValueError(
            f"collective algorithm {name!r} does not model {op!r}; "
            f"it supports {list(algorithm.supported_ops)}"
        )
    return algorithm


def hierarchical_crossover_factor(topology: ClusterTopology) -> float:
    """Intra/inter effective-bandwidth ratio above which hierarchical all-gather always wins.

    With serial phases, the hierarchical all-gather must move the full
    ``(N-1)``-payload aggregate over the intra-node link (gather + broadcast)
    to save ``D-1`` of every ``D`` payloads on the inter-node ring, so merely
    matching the inter-node bandwidth is *not* enough — at equal bandwidths it
    moves strictly more bytes than the flat ring.  Comparing the closed forms
    (``p`` the per-worker payload, ``L/b`` latency and effective bandwidth,
    ``a``/``i`` the intra/inter links)::

        hierarchical <= flat
          <=>  D*L_a + (N+D-2) * p/b_a  <=  (N-M)*L_i + (D-1) * p/b_i

    which holds for *every* payload whenever ``L_a <= L_i`` (the intra fabric
    is no slower to start a message; ``D <= N-M`` covers the latency terms)
    and ``b_a >= b_i * (N+D-2)/(D-1)`` — the factor this function returns.
    Multi-GPU servers clear it easily: the 4x8 Ethernet preset needs ~5.4x
    and its InfiniBand intra-node link is ~17x the effective TCP rate.

    Single-level topologies have nothing to cross over, so the factor is
    ``inf`` (hierarchical degenerates to the flat algorithm instead).
    """
    if topology.is_single_level:
        return math.inf
    n, d = topology.num_workers, topology.devices_per_node
    return (n + d - 2) / (d - 1)


@dataclass(frozen=True)
class CollectiveModel:
    """A cluster topology plus one algorithm choice per collective operation.

    The single-level model built by :meth:`flat` with the default algorithms
    reproduces ``NetworkModel.allreduce_time``/``allgather_time`` exactly —
    the old closed forms are the degenerate case of this layer.

    ``pipeline_chunks`` and ``allgather_dedup`` thread the hierarchical
    algorithm's chunk-pipelining and sparse-dedup knobs through every priced
    collective; both default to off (``1`` / ``None``), in which case the
    model reproduces the serial PR-3 costs bit-for-bit.  Single-link
    algorithms have nothing to overlap or deduplicate, so the knobs are
    no-ops for them.
    """

    topology: ClusterTopology
    allreduce_algorithm: str = "ring-allreduce"
    allgather_algorithm: str = "flat-allgather"
    #: Payload chunks the hierarchical phases pipeline over (1 = serial).
    pipeline_chunks: int = 1
    #: Sparse-aggregate dedup model applied to hierarchical all-gathers when
    #: the caller supplies a payload density; ``None`` disables dedup.
    allgather_dedup: SparseAggregateModel | None = None

    def __post_init__(self) -> None:
        get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        get_collective_algorithm(self.allgather_algorithm, op="allgather")
        validate_pipeline_chunks(self.pipeline_chunks)

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, **kwargs) -> "CollectiveModel":
        """Degenerate single-level model over one shared link (the pre-topology behaviour)."""
        return cls(topology=ClusterTopology.flat(network, num_workers), **kwargs)

    def allreduce_cost(self, num_bytes: float) -> CollectiveCost:
        """Per-phase cost of all-reducing a dense buffer of ``num_bytes``."""
        algorithm = get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        return algorithm.cost(
            self.topology, "allreduce", num_bytes, pipeline_chunks=self.pipeline_chunks
        )

    def allgather_cost(
        self, payload_bytes_per_worker: float, *, density: float | None = None
    ) -> CollectiveCost:
        """Per-phase cost of all-gathering one sparse payload per worker.

        ``density`` is the payload's non-zero fraction of its dense bucket;
        it feeds the sparse dedup model (when one is configured) so the
        hierarchical inter-node exchange carries the expected index union
        instead of the raw concatenation.  ``None`` (unknown density)
        disables dedup for this call.
        """
        algorithm = get_collective_algorithm(self.allgather_algorithm, op="allgather")
        return algorithm.cost(
            self.topology,
            "allgather",
            payload_bytes_per_worker,
            density=density,
            dedup=self.allgather_dedup,
            pipeline_chunks=self.pipeline_chunks,
        )

    def allreduce_time(self, num_bytes: float) -> float:
        return self.allreduce_cost(num_bytes).total

    def allgather_time(self, payload_bytes_per_worker: float) -> float:
        return self.allgather_cost(payload_bytes_per_worker).total


#: Appendix D, Cluster 1: 8 single-GPU servers on 10 Gbps (or 25 Gbps) TCP
#: Ethernet.  One device per node, so the intra-node link never carries
#: collective traffic; it is set to the in-server InfiniBand-class bus for
#: completeness.
TOPOLOGY_CLUSTER1_10G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-10g",
)
TOPOLOGY_CLUSTER1_25G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_25G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-25g",
)

#: Appendix D, Cluster 2: one shared server with 8 GPUs on a 100 Gbps
#: InfiniBand/NVLink-class fabric.  Single node, so the inter-node link is
#: idle; it is set to the datacentre Ethernet the server hangs off.
TOPOLOGY_CLUSTER2_100G = ClusterTopology(
    num_nodes=1,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster2-infiniband-100g",
)

#: The two-level scaling scenario the hierarchical algorithms target: 4
#: Cluster 2-class servers (8 devices each on InfiniBand) joined by Cluster
#: 1's 10 Gbps TCP Ethernet.
TOPOLOGY_ETHERNET_4X8 = ClusterTopology(
    num_nodes=4,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="ethernet-4x8",
)

#: A 4x4 2-D torus of single-GPU boxes: every row is a 25 Gbps Ethernet ring,
#: rows are joined column-wise by the 10 Gbps fabric.  Expressed through the
#: same two-level decomposition the hierarchical algorithms use — the row ring
#: plays the intra-node role (gather along the row first), the column ring
#: the inter-node role — which is exactly how 2-D torus collectives
#: decompose dimension-by-dimension.
TOPOLOGY_TORUS_2D = ClusterTopology(
    num_nodes=4,
    devices_per_node=4,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=CLUSTER_ETHERNET_25G,
    name="torus-2d",
)

TOPOLOGIES: dict[str, ClusterTopology] = {
    "cluster1": TOPOLOGY_CLUSTER1_10G,
    "cluster1-25g": TOPOLOGY_CLUSTER1_25G,
    "cluster2": TOPOLOGY_CLUSTER2_100G,
    "ethernet-4x8": TOPOLOGY_ETHERNET_4X8,
    "torus-2d": TOPOLOGY_TORUS_2D,
}


def get_topology(name: str) -> ClusterTopology:
    """Look up a predefined cluster topology by short key or full name."""
    return lookup_preset(TOPOLOGIES, name, "topology")
