"""Multi-level cluster topology and pluggable collective-algorithm models.

The paper's speed-ups come from two very different fabrics — a TCP 10/25 Gbps
Ethernet cluster of single-GPU servers (Appendix D, Cluster 1) and a 100 Gbps
InfiniBand fabric inside one 8-GPU node (Cluster 2).  A single flat
:class:`~repro.distributed.network.NetworkModel` link cannot express the
difference, nor can one closed form express the algorithms real stacks choose
per fabric (ring vs recursive doubling, flat vs hierarchical sparse
all-gather).

This module models both dimensions:

* :class:`ClusterTopology` — a hierarchy of :class:`LinkLevel` entries
  (devices → racks → pods, each with its own :class:`NetworkModel` and
  oversubscription factor).  The classic construction is two-level —
  ``num_nodes`` x ``devices_per_node`` workers with an *intra-node* link
  (NVLink/InfiniBand inside a server) and an *inter-node* link (the Ethernet
  between servers) — and ``devices_per_node == 1`` or ``num_nodes == 1``
  degenerates to the old single-level model.  :meth:`ClusterTopology.from_levels`
  builds deeper fabrics (the ``fat-tree-128`` and ``dragonfly-64`` presets).
* Collective algorithms — ``ring-allreduce``, ``recursive-doubling``,
  ``flat-allgather`` and ``hierarchical`` — each returning a
  :class:`CollectiveCost` whose per-phase breakdown sums exactly to the total,
  so the event-driven iteration schedule can place every phase on the network
  lane.
* :class:`CollectiveModel` — a topology plus one algorithm choice per
  operation; the single-level case with ``ring-allreduce``/``flat-allgather``
  reproduces ``NetworkModel.allreduce_time``/``allgather_time`` bit-for-bit
  (the golden tests pin this), which is what makes the refactor safe.

Sparse all-gather payloads grow with the participant count (every worker
contributes its own (index, value) selection), which is why the hierarchical
algorithm helps: the inter-node ring exchanges one node-aggregated payload per
node instead of one per device.  The price is that the aggregate must also be
distributed *inside* each node, so hierarchical only wins when the intra-node
link is sufficiently faster than the inter-node link — see
:func:`hierarchical_crossover_factor` for the exact sufficient condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NODE_INFINIBAND_100G,
    NetworkModel,
    lookup_preset,
)

#: Collective operations the algorithm layer knows how to price.
COLLECTIVE_OPS: tuple[str, ...] = ("allreduce", "allgather")

#: Index-overlap assumptions the sparse-aggregate dedup model supports.
DEDUP_ASSUMPTIONS: tuple[str, ...] = ("uniform", "identical", "disjoint")


@dataclass(frozen=True)
class SparseAggregateModel:
    """Expected size of a deduplicated union of sparse top-k selections.

    When a node leader reduces its ``D`` devices' (index, value) payloads
    before the inter-node exchange, overlapping indices collapse into one
    entry, so the node aggregate is the *union* of the selections — between
    one worker's payload (everyone picked the same indices) and ``D`` payloads
    (nobody overlapped).  Where the union lands depends on how correlated the
    selections are; this model offers the three standard assumptions:

    ``"uniform"``
        Each worker's k indices are an independent uniform draw from the n
        bucket slots.  The expected union is the closed form
        ``n * (1 - (1 - k/n)^D)``, i.e. a per-worker multiplier of
        ``(1 - (1 - rho)^D) / rho`` at density ``rho = k/n``.  Real top-k
        gradients overlap *more* than uniform draws, so this is the
        conservative default.
    ``"identical"``
        Every worker selects exactly the same k indices (perfectly correlated
        gradients) — the lower bound: the union is one worker's payload.
    ``"disjoint"``
        No two workers share an index — the upper bound: the union is the
        plain concatenation, capped at the dense bucket size.
    """

    assumption: str = "uniform"

    def __post_init__(self) -> None:
        if self.assumption not in DEDUP_ASSUMPTIONS:
            raise ValueError(
                f"unknown dedup assumption {self.assumption!r}; "
                f"known: {list(DEDUP_ASSUMPTIONS)}"
            )

    @staticmethod
    def _check(density: float, participants: int) -> None:
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if participants < 1:
            raise ValueError("participants must be >= 1")

    def union_factor(self, density: float, participants: int) -> float:
        """Expected union size as a multiple of one worker's selection.

        Always in ``[1, min(participants, 1/density)]``: the union can never
        be smaller than one contribution nor larger than the concatenation or
        the dense bucket.
        """
        self._check(density, participants)
        if participants == 1:
            return 1.0
        cap = min(float(participants), 1.0 / density)
        if self.assumption == "identical":
            return 1.0
        if self.assumption == "disjoint":
            return cap
        return min((1.0 - (1.0 - density) ** participants) / density, cap)

    def union_payload_bytes(self, payload_bytes: float, density: float, participants: int) -> float:
        """Expected deduplicated aggregate of ``participants`` payloads of ``payload_bytes``."""
        _check_payload(payload_bytes)
        return payload_bytes * self.union_factor(density, participants)

    def dedup_ratio(self, density: float, participants: int) -> float:
        """Concatenated-over-deduplicated size: how much the reduce shrinks the aggregate."""
        return participants / self.union_factor(density, participants)


@dataclass(frozen=True)
class LinkLevel:
    """One level of a cluster's link hierarchy: ``fanout`` children per group.

    ``link`` prices the fabric joining the level's groups;
    ``oversubscription`` divides its effective bandwidth (a 4:1 oversubscribed
    fat-tree core delivers a quarter of the line rate under all-to-all load)
    and must be >= 1 — oversubscribing a level can never speed it up.
    ``name`` labels the level's phases in collective cost breakdowns
    (``"intra"``/``"inter"`` for the classic two-level decomposition).
    """

    fanout: int
    link: NetworkModel
    oversubscription: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if not self.oversubscription >= 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    @property
    def effective_link(self) -> NetworkModel:
        """The level's link with oversubscription priced in.

        An oversubscription of exactly 1 returns the link object unchanged, so
        un-oversubscribed levels keep bit-for-bit identity with the two-level
        model they generalize.
        """
        if self.oversubscription == 1.0:
            return self.link
        return NetworkModel(
            bandwidth_gbps=self.link.bandwidth_gbps / self.oversubscription,
            latency_s=self.link.latency_s,
            name=f"{self.link.name}/os{self.oversubscription:g}",
            efficiency=self.link.efficiency,
        )


@dataclass(frozen=True)
class ClusterTopology:
    """A cluster as a hierarchy of link levels.

    The classic construction is two-level — ``num_nodes`` servers with
    ``devices_per_node`` workers each, ``intra_node`` pricing traffic inside a
    server and ``inter_node`` the Ethernet between servers — and either level
    may be trivial, degenerating to the old single-level model.

    ``levels`` generalizes this to an arbitrary hierarchy
    (innermost-to-outermost :class:`LinkLevel` entries, e.g. devices → racks →
    pods for a fat-tree): build one with :meth:`from_levels`.  When ``levels``
    is omitted it is synthesized from the two-level fields, so every
    pre-existing topology is exactly the two-level special case.
    """

    num_nodes: int
    devices_per_node: int
    inter_node: NetworkModel
    intra_node: NetworkModel
    name: str = ""
    levels: tuple[LinkLevel, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")
        if self.levels is None:
            object.__setattr__(
                self,
                "levels",
                (
                    LinkLevel(self.devices_per_node, self.intra_node, name="intra"),
                    LinkLevel(self.num_nodes, self.inter_node, name="inter"),
                ),
            )
            return
        levels = tuple(self.levels)
        if not levels:
            raise ValueError("levels must contain at least one LinkLevel")
        object.__setattr__(self, "levels", levels)
        outer = 1
        for level in levels[1:]:
            outer *= level.fanout
        if self.devices_per_node != levels[0].fanout or self.num_nodes != outer:
            raise ValueError(
                "two-level summary fields disagree with levels: expected "
                f"devices_per_node={levels[0].fanout}, num_nodes={outer}; use "
                "ClusterTopology.from_levels to build multi-level topologies"
            )

    @classmethod
    def from_levels(cls, levels, *, name: str = "") -> "ClusterTopology":
        """Build a topology from innermost-to-outermost :class:`LinkLevel` entries.

        The legacy two-level summary fields are derived for compatibility:
        ``devices_per_node`` is the innermost fanout, ``num_nodes`` the product
        of the remaining fanouts, and ``intra_node``/``inter_node`` the
        innermost/outermost effective links.
        """
        levels = tuple(levels)
        if not levels:
            raise ValueError("levels must contain at least one LinkLevel")
        num_nodes = 1
        for level in levels[1:]:
            num_nodes *= level.fanout
        return cls(
            num_nodes=num_nodes,
            devices_per_node=levels[0].fanout,
            inter_node=levels[-1].effective_link,
            intra_node=levels[0].effective_link,
            name=name,
            levels=levels,
        )

    @property
    def num_workers(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def is_single_level(self) -> bool:
        """True when at most one level has more than one participant."""
        return sum(1 for level in self.levels if level.fanout > 1) <= 1

    @property
    def bottleneck_link(self) -> NetworkModel:
        """The link a flat (topology-oblivious) collective is gated by.

        A ring laid out group-by-group advances every step at the pace of its
        slowest hop: the outermost level that actually spans several groups.
        A fully trivial hierarchy falls back to the innermost link.
        """
        for level in reversed(self.levels):
            if level.fanout > 1:
                return level.effective_link
        return self.levels[0].effective_link

    def degraded(self, factor: float) -> "ClusterTopology":
        """This topology with every link's effective bandwidth cut by ``factor``.

        Models a uniformly degraded fabric (congestion, a failed parallel
        link): each level keeps its structure but delivers ``1/factor`` of
        its bandwidth, i.e. the level's oversubscription grows by ``factor``.
        ``factor == 1`` returns ``self`` unchanged, preserving bit-for-bit
        identity with the clean fabric.
        """
        factor = float(factor)
        if not math.isfinite(factor) or factor < 1.0:
            raise ValueError(f"degradation factor must be finite and >= 1, got {factor!r}")
        if factor == 1.0:
            return self
        levels = tuple(
            LinkLevel(
                fanout=level.fanout,
                link=level.link,
                oversubscription=level.oversubscription * factor,
                name=level.name,
            )
            for level in self.levels
        )
        name = f"{self.name}/deg{factor:g}" if self.name else f"deg{factor:g}"
        return ClusterTopology.from_levels(levels, name=name)

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, *, name: str = "") -> "ClusterTopology":
        """The degenerate single-level topology: every worker on one shared link."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        return cls(
            num_nodes=num_workers,
            devices_per_node=1,
            inter_node=network,
            intra_node=network,
            name=name or f"flat-{network.name}-x{num_workers}",
        )


@dataclass(frozen=True)
class CollectivePhase:
    """One phase of a collective: where it runs, how long, how much it moves.

    ``start`` is the phase's relative start offset within the collective:
    ``None`` means "serial — right after the previous phase" (the pre-pipeline
    contract), an explicit float places the phase on a pipelined timeline
    where phases on *different* links may overlap.  ``chunk`` identifies which
    payload chunk a pipelined phase carries (``None`` for unchunked phases).
    """

    name: str
    link: str
    seconds: float
    volume_bytes: float = 0.0
    start: float | None = None
    chunk: int | None = None


@dataclass(frozen=True)
class CollectiveCost:
    """Per-phase cost breakdown of one collective operation.

    For serial phases (``start is None`` throughout — every pre-pipeline
    algorithm), ``total`` is the plain sum of the phase durations: phase *k+1*
    consumes phase *k*'s output, which is what lets the schedule simulator
    place them back-to-back on the network lane.  Chunk-pipelined costs carry
    explicitly placed phases instead, and ``total`` is the makespan — the end
    of the last phase, with same-link phases still strictly serial.
    """

    op: str
    algorithm: str
    num_workers: int
    phases: tuple[CollectivePhase, ...] = ()
    #: Number of payload chunks the phases were pipelined over (1 = serial).
    pipeline_chunks: int = 1
    #: Concatenated-over-deduplicated node-aggregate size achieved by the
    #: sparse dedup model (1.0 when dedup is off or structurally impossible).
    dedup_ratio: float = 1.0

    @property
    def total(self) -> float:
        total = 0.0
        cursor = 0.0
        for phase in self.phases:
            start = cursor if phase.start is None else phase.start
            end = start + phase.seconds
            cursor = end
            if end > total:
                total = end
        return total

    @property
    def is_pipelined(self) -> bool:
        """True when any phase carries an explicit pipelined placement."""
        return any(phase.start is not None for phase in self.phases)

    @property
    def serial_seconds(self) -> float:
        """The back-to-back traversal time: plain sum of every phase duration."""
        total = 0.0
        for phase in self.phases:
            total += phase.seconds
        return total

    @property
    def volume_bytes(self) -> float:
        return sum(phase.volume_bytes for phase in self.phases)


@dataclass(frozen=True, eq=False)
class PhaseTable:
    """Batched serial collective pricing: one (bucket, phase) matrix per field.

    For a fixed topology and algorithm every bucket's cost has the same phase
    structure (trivial levels contribute no phases regardless of payload), so
    ``B`` buckets price as ``(B, P)`` matrices sharing per-column names and
    links.  Row ``b`` is elementwise bit-identical to the scalar
    :class:`CollectiveCost` of bucket ``b`` — the affine per-phase pricing
    ``steps * (latency + payload / bandwidth)`` commutes with batching — which
    is what lets the vectorized scheduler reproduce the loop backend exactly.
    """

    names: tuple[str, ...]
    links: tuple[str, ...]
    #: (B, P) serial per-phase durations, in phase order.
    seconds: np.ndarray
    #: (B, P) per-phase wire volumes.
    volumes: np.ndarray
    #: (B,) per-bucket achieved dedup ratios.
    dedup_ratios: np.ndarray

    @property
    def num_buckets(self) -> int:
        return self.seconds.shape[0]

    @property
    def totals(self) -> np.ndarray:
        """(B,) serial collective totals — the cumulative cursor walk, batched."""
        if self.seconds.shape[1] == 0:
            return np.zeros(self.num_buckets)
        return np.cumsum(self.seconds, axis=1)[:, -1]


def _check_payload(num_bytes: float) -> None:
    if num_bytes < 0:
        raise ValueError("payload bytes must be non-negative")


def validate_pipeline_chunks(pipeline_chunks: int) -> int:
    """Return ``pipeline_chunks`` if it is a valid chunk count, else raise."""
    if not isinstance(pipeline_chunks, int) or pipeline_chunks < 1:
        raise ValueError(f"pipeline_chunks must be a positive integer, got {pipeline_chunks!r}")
    return pipeline_chunks


@dataclass(frozen=True)
class _PhaseSpec:
    """Serial description of one collective phase, ready to be chunk-pipelined.

    ``steps`` messages of ``step_bytes`` each over ``link``; the serial
    duration is ``steps * (latency + step_bytes / bandwidth)``, and splitting
    the payload into ``C`` chunks makes each chunk cost
    ``steps * (latency + (step_bytes / C) / bandwidth)`` — the latency is paid
    per chunk, which is why pipelining only wins when the overlap across
    links recovers more than the extra message starts.
    """

    name: str
    link: NetworkModel
    steps: int
    step_bytes: float
    volume_bytes: float

    def chunk_seconds(self, pipeline_chunks: int) -> float:
        return self.steps * (
            self.link.latency_s + (self.step_bytes / pipeline_chunks) / self.link.bytes_per_second
        )


def _pipeline_phases(
    specs: list[_PhaseSpec], serial: list[CollectivePhase], pipeline_chunks: int
) -> list[CollectivePhase]:
    """Chunk-pipeline a multi-phase collective, falling back to serial when it loses.

    Chunk *c*'s phase *p* starts once the same link has drained chunk *c-1*'s
    phase *p* and phase *p-1* has delivered chunk *c* — the classic software
    pipeline, whose makespan is latency + max-dominated instead of a pure sum.
    Because every chunk pays each phase's message latencies again, chunking a
    single-phase (or latency-bound) collective is a strict loss; this helper
    then returns the serial phases unchanged, so the pipelined cost is never
    worse than the serial one.
    """
    if not specs or pipeline_chunks == 1:
        return serial
    serial_total = 0.0
    for phase in serial:
        serial_total += phase.seconds
    chunk_seconds = [spec.chunk_seconds(pipeline_chunks) for spec in specs]
    # Greedy earliest-start list scheduling: an operation (chunk c, phase p)
    # becomes ready when phase p-1 has delivered chunk c, and every link
    # serves its queue work-conservingly — one transfer at a time, earliest
    # ready first.  Tracking occupancy per *link* (not per phase) matters
    # because several phases may share a fabric (e.g. the hierarchical
    # all-gather's intra-node gather and broadcast), and two chunks' phases
    # must never overlap on one wire.
    spans: dict[tuple[int, int], tuple[float, float]] = {}
    link_free: dict[str, float] = {}
    pending = [(chunk, p) for chunk in range(pipeline_chunks) for p in range(len(specs))]
    while pending:
        best = None
        for chunk, p in pending:
            if p > 0 and (chunk, p - 1) not in spans:
                continue
            ready = spans[(chunk, p - 1)][1] if p > 0 else 0.0
            start = max(ready, link_free.get(specs[p].link.name, 0.0))
            key = (start, chunk, p)
            if best is None or key < best[0]:
                best = (key, chunk, p, start)
        _, chunk, p, start = best
        end = start + chunk_seconds[p]
        spans[(chunk, p)] = (start, end)
        link_free[specs[p].link.name] = end
        pending.remove((chunk, p))
    makespan = max(end for _, end in spans.values())
    if makespan >= serial_total:
        return serial
    return [
        CollectivePhase(
            name=specs[p].name,
            link=specs[p].link.name,
            seconds=chunk_seconds[p],
            volume_bytes=specs[p].volume_bytes / pipeline_chunks,
            start=spans[(chunk, p)][0],
            chunk=chunk,
        )
        for chunk in range(pipeline_chunks)
        for p in range(len(specs))
    ]


class CollectiveAlgorithm:
    """Base class: prices one or both collective ops over a :class:`ClusterTopology`.

    ``density``, ``dedup`` and ``pipeline_chunks`` are accepted by every
    algorithm so :class:`CollectiveModel` can thread them uniformly; only the
    algorithms with a per-node reduce point (hierarchical) and phases on more
    than one link can act on them — single-link collectives have nothing to
    deduplicate or overlap, so the knobs are documented no-ops there.
    """

    name: str = ""
    supported_ops: tuple[str, ...] = ()
    #: Instance-level knob defaults, overridable per :meth:`cost` call.
    pipeline_chunks: int = 1
    dedup: SparseAggregateModel | None = None

    def cost(
        self,
        topology: ClusterTopology,
        op: str,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int | None = None,
    ) -> CollectiveCost:
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {op!r}; known: {list(COLLECTIVE_OPS)}")
        if op not in self.supported_ops:
            raise ValueError(
                f"algorithm {self.name!r} does not model {op!r}; "
                f"it supports {list(self.supported_ops)}"
            )
        _check_payload(num_bytes)
        if pipeline_chunks is None:
            pipeline_chunks = self.pipeline_chunks
        validate_pipeline_chunks(pipeline_chunks)
        if dedup is None:
            dedup = self.dedup
        phases, dedup_ratio = getattr(self, "_" + op)(
            topology, num_bytes, density=density, dedup=dedup, pipeline_chunks=pipeline_chunks
        )
        phases = tuple(phases)
        # Report the chunk count actually priced: a latency-bound fallback to
        # serial phases (or an algorithm with nothing to pipeline) is 1-chunk
        # pricing no matter what the caller asked for.
        priced_chunks = pipeline_chunks if any(p.start is not None for p in phases) else 1
        return CollectiveCost(
            op=op,
            algorithm=self.name,
            num_workers=topology.num_workers,
            phases=phases,
            pipeline_chunks=priced_chunks,
            dedup_ratio=dedup_ratio,
        )

    def batched_allgather(
        self,
        topology: ClusterTopology,
        payloads: np.ndarray,
        densities: list[float | None],
        dedup: SparseAggregateModel | None,
    ) -> PhaseTable | None:
        """Serial all-gather pricing for a whole batch of bucket payloads.

        Returns ``None`` when the algorithm has no batched form (the caller
        falls back to per-bucket :meth:`cost` calls).  Implementations must be
        row-for-row bit-identical to the scalar pricing — the contract the
        vectorized scheduler backend builds on.
        """
        return None


class RingAllreduce(CollectiveAlgorithm):
    """Ring all-reduce: reduce-scatter then all-gather, ``2(N-1)`` chunk steps.

    On a single-level topology the two phases sum exactly to
    ``NetworkModel.allreduce_time`` (each phase is ``(N-1)`` steps of one
    ``1/N`` chunk; doubling a float is exact, so the split is lossless).
    """

    name = "ring-allreduce"
    supported_ops = ("allreduce",)

    def _allreduce(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        chunk = num_bytes / n
        seconds = (n - 1) * (link.latency_s + chunk / link.bytes_per_second)
        volume = (n - 1) * chunk
        return [
            CollectivePhase("reduce-scatter", link.name, seconds, volume),
            CollectivePhase("ring-allgather", link.name, seconds, volume),
        ], 1.0


class RecursiveDoubling(CollectiveAlgorithm):
    """Recursive doubling: ``ceil(log2 N)`` rounds of pairwise exchange.

    All-reduce exchanges the full buffer every round (few latencies, more
    bytes — the latency-bound regime ring all-reduce loses in).  All-gather
    doubles the gathered block every round, so the total volume matches the
    ring's ``(N-1)`` payloads while paying only ``log2 N`` latencies.
    """

    name = "recursive-doubling"
    supported_ops = ("allreduce", "allgather")

    def _allreduce(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        return [
            CollectivePhase(
                f"round-{k}",
                link.name,
                link.latency_s + num_bytes / link.bytes_per_second,
                num_bytes,
            )
            for k in range(rounds)
        ], 1.0

    def _allgather(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        phases = []
        for k in range(rounds):
            block = min(2**k, n - 2**k) * num_bytes
            phases.append(
                CollectivePhase(
                    f"round-{k}",
                    link.name,
                    link.latency_s + block / link.bytes_per_second,
                    block,
                )
            )
        return phases, 1.0

    def batched_allgather(self, topology, payloads, densities, dedup):
        payloads = np.asarray(payloads, dtype=float)
        num_buckets = payloads.shape[0]
        n = topology.num_workers
        if n == 1:
            return PhaseTable(
                (), (), np.zeros((num_buckets, 0)), np.zeros((num_buckets, 0)),
                np.ones(num_buckets),
            )
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        blocks = np.stack(
            [min(2**k, n - 2**k) * payloads for k in range(rounds)], axis=1
        )
        return PhaseTable(
            names=tuple(f"round-{k}" for k in range(rounds)),
            links=(link.name,) * rounds,
            seconds=link.latency_s + blocks / link.bytes_per_second,
            volumes=blocks,
            dedup_ratios=np.ones(num_buckets),
        )


class FlatAllgather(CollectiveAlgorithm):
    """Topology-oblivious ring all-gather: ``N-1`` steps of one payload each.

    The single-level case is, expression for expression, the old
    ``NetworkModel.allgather_time`` closed form; on a multi-node topology
    every step is gated by the inter-node hop (see
    :attr:`ClusterTopology.bottleneck_link`).
    """

    name = "flat-allgather"
    supported_ops = ("allgather",)

    def _allgather(self, topology: ClusterTopology, num_bytes: float, **_knobs):
        n = topology.num_workers
        if n == 1:
            return [], 1.0
        link = topology.bottleneck_link
        steps = n - 1
        seconds = steps * (link.latency_s + num_bytes / link.bytes_per_second)
        return [CollectivePhase("ring-allgather", link.name, seconds, steps * num_bytes)], 1.0

    def batched_allgather(self, topology, payloads, densities, dedup):
        payloads = np.asarray(payloads, dtype=float)
        num_buckets = payloads.shape[0]
        n = topology.num_workers
        if n == 1:
            return PhaseTable(
                (), (), np.zeros((num_buckets, 0)), np.zeros((num_buckets, 0)),
                np.ones(num_buckets),
            )
        link = topology.bottleneck_link
        steps = n - 1
        seconds = steps * (link.latency_s + payloads / link.bytes_per_second)
        return PhaseTable(
            names=("ring-allgather",),
            links=(link.name,),
            seconds=seconds[:, None],
            volumes=(steps * payloads)[:, None],
            dedup_ratios=np.ones(num_buckets),
        )


def _aggregate_factor(
    dedup: SparseAggregateModel | None, density: float | None, size: int
) -> float:
    """Size of a ``size``-worker sparse aggregate, in payloads per worker.

    With a dedup model and a known density the aggregate is the expected index
    union; otherwise it is the raw concatenation.  Shared by the serial and
    batched hierarchical pricing so both compute bit-identical factors.
    """
    if dedup is not None and density is not None and size > 1:
        return dedup.union_factor(density, size)
    return float(size)


class Hierarchical(CollectiveAlgorithm):
    """Multi-level collective: gather up the hierarchy, exchange at the top, broadcast down.

    *All-gather* (sparse payloads, one per worker): every non-outermost level
    ring-gathers its groups' aggregates to a leader over that level's link,
    the outermost level's leaders ring-all-gather the full subtree aggregates,
    and each lower level broadcasts the global result back down.  On the
    classic two-level topology this is exactly: each node gathers its ``D``
    device payloads, the ``M`` leaders exchange ``D``-payload aggregates over
    ``M-1`` inter-node steps (instead of ``N-1``), and each leader broadcasts
    the ``N``-payload result to its devices.

    *All-reduce* (dense): binomial-tree reduce towards the top at every lower
    level, ring all-reduce among the outermost leaders, binomial broadcast
    back down — volume does not grow with participants, so the win is purely
    fewer top-level latencies/steps.

    Degenerate cases collapse exactly: a trivial level (``fanout == 1``)
    contributes no phases, so ``devices_per_node == 1`` leaves only the
    inter-node phase (identical to the flat/ring algorithm), ``num_nodes ==
    1`` leaves only the intra-node phases, and one worker costs zero.

    Two knobs refine the sparse all-gather beyond the PR-3 serial pricing:

    * ``dedup`` + ``density`` — the node leader's reduce deduplicates
      overlapping indices before the inter-node exchange, so the node
      aggregate shrinks from ``D`` payloads to the expected union
      (:class:`SparseAggregateModel`), and the final broadcast ships the
      global union instead of the raw ``N - 1``-payload concatenation.  The
      no-dedup case matches the disjoint-union bound while the dense-bucket
      cap is slack (density <= 1/participants); past it, even disjoint
      selections cannot exceed the bucket, so ``disjoint`` prices lower.
    * ``pipeline_chunks`` — the payload is split into chunks and the
      intra/inter phases overlap chunk-by-chunk, so the cost becomes latency
      + max-dominated instead of a pure phase sum.  ``pipeline_chunks=1`` (or
      any chunking that loses to the extra message latencies) keeps the
      serial phases bit-for-bit.
    """

    name = "hierarchical"
    supported_ops = ("allreduce", "allgather")

    def __init__(
        self,
        pipeline_chunks: int = 1,
        dedup: SparseAggregateModel | None = None,
    ) -> None:
        self.pipeline_chunks = validate_pipeline_chunks(pipeline_chunks)
        self.dedup = dedup

    def _allgather(
        self,
        topology: ClusterTopology,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int = 1,
    ):
        levels = topology.levels
        n = topology.num_workers
        # Each reduce point dedups its subtree's overlapping selections into
        # one aggregate; the final broadcasts ship the n-worker global union.
        # The no-dedup aggregates (``size`` payloads) coincide with the
        # disjoint-union bound until its dense-bucket cap bites (density >
        # 1/participants), which is why both paths share one formula pair.
        phases = []
        specs = []
        # Upward: every non-outermost level gathers its groups' subtree
        # aggregates to a leader, f-1 ring steps of the growing aggregate.
        subtree = 1
        for level in levels[:-1]:
            if level.fanout > 1:
                link = level.effective_link
                payload = _aggregate_factor(dedup, density, subtree) * num_bytes
                steps = level.fanout - 1
                seconds = steps * (link.latency_s + payload / link.bytes_per_second)
                phase_name = f"{level.name or 'level'}-gather"
                phases.append(
                    CollectivePhase(phase_name, link.name, seconds, steps * payload)
                )
                specs.append(_PhaseSpec(phase_name, link, steps, payload, steps * payload))
            subtree *= level.fanout
        # Top: the outermost level's leaders ring-all-gather the aggregates.
        top = levels[-1]
        if top.fanout > 1:
            link = top.effective_link
            payload = _aggregate_factor(dedup, density, subtree) * num_bytes
            steps = top.fanout - 1
            seconds = steps * (link.latency_s + payload / link.bytes_per_second)
            phase_name = f"{top.name or 'top'}-allgather"
            phases.append(CollectivePhase(phase_name, link.name, seconds, steps * payload))
            specs.append(_PhaseSpec(phase_name, link, steps, payload, steps * payload))
        # Downward: each lower level broadcasts the global aggregate (minus
        # the receiver's own payload) back towards the devices.
        gathered = (_aggregate_factor(dedup, density, n) - 1.0) * num_bytes
        for level in reversed(levels[:-1]):
            if level.fanout > 1:
                link = level.effective_link
                seconds = link.latency_s + gathered / link.bytes_per_second
                phase_name = f"{level.name or 'level'}-broadcast"
                phases.append(CollectivePhase(phase_name, link.name, seconds, gathered))
                specs.append(_PhaseSpec(phase_name, link, 1, gathered, gathered))
        # The dedup win is measured at the top-level exchange: how much the
        # below-top subtree aggregate shrank versus plain concatenation.
        dedup_ratio = subtree / _aggregate_factor(dedup, density, subtree)
        if pipeline_chunks > 1:
            phases = _pipeline_phases(specs, phases, pipeline_chunks)
        return phases, dedup_ratio

    def _allreduce(
        self,
        topology: ClusterTopology,
        num_bytes: float,
        *,
        density: float | None = None,
        dedup: SparseAggregateModel | None = None,
        pipeline_chunks: int = 1,
    ):
        levels = topology.levels
        phases = []
        specs = []

        def tree_phase(level: LinkLevel, suffix: str) -> None:
            link = level.effective_link
            rounds = math.ceil(math.log2(level.fanout))
            seconds = rounds * (link.latency_s + num_bytes / link.bytes_per_second)
            phase_name = f"{level.name or 'level'}-{suffix}"
            phases.append(
                CollectivePhase(phase_name, link.name, seconds, rounds * num_bytes)
            )
            specs.append(_PhaseSpec(phase_name, link, rounds, num_bytes, rounds * num_bytes))

        # Binomial-tree reduce towards the top at every non-outermost level...
        for level in levels[:-1]:
            if level.fanout > 1:
                tree_phase(level, "reduce")
        # ...ring all-reduce among the outermost leaders...
        top = levels[-1]
        if top.fanout > 1:
            link = top.effective_link
            chunk = num_bytes / top.fanout
            steps = 2 * (top.fanout - 1)
            seconds = steps * (link.latency_s + chunk / link.bytes_per_second)
            phase_name = f"{top.name or 'top'}-allreduce"
            phases.append(CollectivePhase(phase_name, link.name, seconds, steps * chunk))
            specs.append(_PhaseSpec(phase_name, link, steps, chunk, steps * chunk))
        # ...and binomial broadcast back down.
        for level in reversed(levels[:-1]):
            if level.fanout > 1:
                tree_phase(level, "broadcast")
        if pipeline_chunks > 1:
            phases = _pipeline_phases(specs, phases, pipeline_chunks)
        return phases, 1.0

    def batched_allgather(self, topology, payloads, densities, dedup):
        payloads = np.asarray(payloads, dtype=float)
        num_buckets = payloads.shape[0]
        levels = topology.levels
        n = topology.num_workers

        distinct_densities = set(densities)
        factor_cache: dict[int, np.ndarray] = {}

        def factors(size: int) -> np.ndarray:
            # Per-bucket union factors via the same scalar helper the serial
            # path uses — bit-identical by construction — evaluated once per
            # distinct (density, size) pair: sweeps usually compress every
            # bucket at one ratio, collapsing the O(B) loop to a dict lookup.
            cached = factor_cache.get(size)
            if cached is None:
                by_density = {
                    density: _aggregate_factor(dedup, density, size)
                    for density in distinct_densities
                }
                cached = factor_cache[size] = np.array(
                    [by_density[density] for density in densities]
                )
            return cached

        names: list[str] = []
        links: list[str] = []
        seconds_cols: list[np.ndarray] = []
        volume_cols: list[np.ndarray] = []
        subtree = 1
        for level in levels[:-1]:
            if level.fanout > 1:
                link = level.effective_link
                payload = factors(subtree) * payloads
                steps = level.fanout - 1
                names.append(f"{level.name or 'level'}-gather")
                links.append(link.name)
                seconds_cols.append(
                    steps * (link.latency_s + payload / link.bytes_per_second)
                )
                volume_cols.append(steps * payload)
            subtree *= level.fanout
        top = levels[-1]
        if top.fanout > 1:
            link = top.effective_link
            payload = factors(subtree) * payloads
            steps = top.fanout - 1
            names.append(f"{top.name or 'top'}-allgather")
            links.append(link.name)
            seconds_cols.append(steps * (link.latency_s + payload / link.bytes_per_second))
            volume_cols.append(steps * payload)
        gathered = (factors(n) - 1.0) * payloads
        for level in reversed(levels[:-1]):
            if level.fanout > 1:
                link = level.effective_link
                names.append(f"{level.name or 'level'}-broadcast")
                links.append(link.name)
                seconds_cols.append(link.latency_s + gathered / link.bytes_per_second)
                volume_cols.append(gathered)
        if seconds_cols:
            seconds = np.stack(seconds_cols, axis=1)
            volumes = np.stack(volume_cols, axis=1)
        else:
            seconds = np.zeros((num_buckets, 0))
            volumes = np.zeros((num_buckets, 0))
        return PhaseTable(
            names=tuple(names),
            links=tuple(links),
            seconds=seconds,
            volumes=volumes,
            dedup_ratios=subtree / factors(subtree),
        )


#: Pluggable collective algorithms, keyed by name.
COLLECTIVE_ALGORITHMS: dict[str, CollectiveAlgorithm] = {
    algo.name: algo
    for algo in (RingAllreduce(), RecursiveDoubling(), FlatAllgather(), Hierarchical())
}


def get_collective_algorithm(name: str, *, op: str | None = None) -> CollectiveAlgorithm:
    """Look up a collective algorithm by name, optionally requiring ``op`` support."""
    key = name.lower()
    if key not in COLLECTIVE_ALGORITHMS:
        raise ValueError(
            f"unknown collective algorithm {name!r}; known: {sorted(COLLECTIVE_ALGORITHMS)}"
        )
    algorithm = COLLECTIVE_ALGORITHMS[key]
    if op is not None and op not in algorithm.supported_ops:
        raise ValueError(
            f"collective algorithm {name!r} does not model {op!r}; "
            f"it supports {list(algorithm.supported_ops)}"
        )
    return algorithm


def hierarchical_crossover_factor(topology: ClusterTopology) -> float:
    """Intra/inter effective-bandwidth ratio above which hierarchical all-gather always wins.

    With serial phases, the hierarchical all-gather must move the full
    ``(N-1)``-payload aggregate over the intra-node link (gather + broadcast)
    to save ``D-1`` of every ``D`` payloads on the inter-node ring, so merely
    matching the inter-node bandwidth is *not* enough — at equal bandwidths it
    moves strictly more bytes than the flat ring.  Comparing the closed forms
    (``p`` the per-worker payload, ``L/b`` latency and effective bandwidth,
    ``a``/``i`` the intra/inter links)::

        hierarchical <= flat
          <=>  D*L_a + (N+D-2) * p/b_a  <=  (N-M)*L_i + (D-1) * p/b_i

    which holds for *every* payload whenever ``L_a <= L_i`` (the intra fabric
    is no slower to start a message; ``D <= N-M`` covers the latency terms)
    and ``b_a >= b_i * (N+D-2)/(D-1)`` — the factor this function returns.
    Multi-GPU servers clear it easily: the 4x8 Ethernet preset needs ~5.4x
    and its InfiniBand intra-node link is ~17x the effective TCP rate.

    Single-level topologies have nothing to cross over, so the factor is
    ``inf`` (hierarchical degenerates to the flat algorithm instead).
    """
    if topology.is_single_level:
        return math.inf
    n, d = topology.num_workers, topology.devices_per_node
    return (n + d - 2) / (d - 1)


@dataclass(frozen=True)
class CollectiveModel:
    """A cluster topology plus one algorithm choice per collective operation.

    The single-level model built by :meth:`flat` with the default algorithms
    reproduces ``NetworkModel.allreduce_time``/``allgather_time`` exactly —
    the old closed forms are the degenerate case of this layer.

    ``pipeline_chunks`` and ``allgather_dedup`` thread the hierarchical
    algorithm's chunk-pipelining and sparse-dedup knobs through every priced
    collective; both default to off (``1`` / ``None``), in which case the
    model reproduces the serial PR-3 costs bit-for-bit.  Single-link
    algorithms have nothing to overlap or deduplicate, so the knobs are
    no-ops for them.
    """

    topology: ClusterTopology
    allreduce_algorithm: str = "ring-allreduce"
    allgather_algorithm: str = "flat-allgather"
    #: Payload chunks the hierarchical phases pipeline over (1 = serial).
    pipeline_chunks: int = 1
    #: Sparse-aggregate dedup model applied to hierarchical all-gathers when
    #: the caller supplies a payload density; ``None`` disables dedup.
    allgather_dedup: SparseAggregateModel | None = None

    def __post_init__(self) -> None:
        get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        get_collective_algorithm(self.allgather_algorithm, op="allgather")
        validate_pipeline_chunks(self.pipeline_chunks)

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, **kwargs) -> "CollectiveModel":
        """Degenerate single-level model over one shared link (the pre-topology behaviour)."""
        return cls(topology=ClusterTopology.flat(network, num_workers), **kwargs)

    def allreduce_cost(self, num_bytes: float) -> CollectiveCost:
        """Per-phase cost of all-reducing a dense buffer of ``num_bytes``."""
        algorithm = get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        return algorithm.cost(
            self.topology, "allreduce", num_bytes, pipeline_chunks=self.pipeline_chunks
        )

    def allgather_cost(
        self, payload_bytes_per_worker: float, *, density: float | None = None
    ) -> CollectiveCost:
        """Per-phase cost of all-gathering one sparse payload per worker.

        ``density`` is the payload's non-zero fraction of its dense bucket;
        it feeds the sparse dedup model (when one is configured) so the
        hierarchical inter-node exchange carries the expected index union
        instead of the raw concatenation.  ``None`` (unknown density)
        disables dedup for this call.
        """
        algorithm = get_collective_algorithm(self.allgather_algorithm, op="allgather")
        return algorithm.cost(
            self.topology,
            "allgather",
            payload_bytes_per_worker,
            density=density,
            dedup=self.allgather_dedup,
            pipeline_chunks=self.pipeline_chunks,
        )

    def allgather_phase_table(
        self, payloads, densities: list[float | None]
    ) -> PhaseTable | None:
        """Batched all-gather pricing for ``B`` bucket payloads at once.

        ``payloads`` is a length-``B`` array of per-worker payload bytes and
        ``densities`` the matching per-bucket dense fractions (``None``
        disables dedup for that bucket, exactly like
        :meth:`allgather_cost`).  Returns ``None`` when the configuration has
        no batched form — chunk pipelining reshapes phases per payload, and a
        custom algorithm may not implement batching — in which case callers
        fall back to per-bucket :meth:`allgather_cost` calls.  Row ``b`` of a
        returned table is bit-identical to ``allgather_cost(payloads[b],
        density=densities[b])``.
        """
        if self.pipeline_chunks != 1:
            return None
        algorithm = get_collective_algorithm(self.allgather_algorithm, op="allgather")
        return algorithm.batched_allgather(
            self.topology, payloads, densities, self.allgather_dedup
        )

    def allreduce_time(self, num_bytes: float) -> float:
        return self.allreduce_cost(num_bytes).total

    def allgather_time(self, payload_bytes_per_worker: float) -> float:
        return self.allgather_cost(payload_bytes_per_worker).total


#: Appendix D, Cluster 1: 8 single-GPU servers on 10 Gbps (or 25 Gbps) TCP
#: Ethernet.  One device per node, so the intra-node link never carries
#: collective traffic; it is set to the in-server InfiniBand-class bus for
#: completeness.
TOPOLOGY_CLUSTER1_10G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-10g",
)
TOPOLOGY_CLUSTER1_25G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_25G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-25g",
)

#: Appendix D, Cluster 2: one shared server with 8 GPUs on a 100 Gbps
#: InfiniBand/NVLink-class fabric.  Single node, so the inter-node link is
#: idle; it is set to the datacentre Ethernet the server hangs off.
TOPOLOGY_CLUSTER2_100G = ClusterTopology(
    num_nodes=1,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster2-infiniband-100g",
)

#: The two-level scaling scenario the hierarchical algorithms target: 4
#: Cluster 2-class servers (8 devices each on InfiniBand) joined by Cluster
#: 1's 10 Gbps TCP Ethernet.
TOPOLOGY_ETHERNET_4X8 = ClusterTopology(
    num_nodes=4,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="ethernet-4x8",
)

#: A 4x4 2-D torus of single-GPU boxes: every row is a 25 Gbps Ethernet ring,
#: rows are joined column-wise by the 10 Gbps fabric.  Expressed through the
#: same two-level decomposition the hierarchical algorithms use — the row ring
#: plays the intra-node role (gather along the row first), the column ring
#: the inter-node role — which is exactly how 2-D torus collectives
#: decompose dimension-by-dimension.
TOPOLOGY_TORUS_2D = ClusterTopology(
    num_nodes=4,
    devices_per_node=4,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=CLUSTER_ETHERNET_25G,
    name="torus-2d",
)

#: A production-scale three-tier fat-tree: 128 nodes of 8 InfiniBand-coupled
#: devices, 8 nodes per rack on 25 Gbps edge links, 4 racks per pod behind a
#: 2:1 oversubscribed 25 Gbps aggregation tier, and 4 pods behind a 4:1
#: oversubscribed 10 Gbps core — the hierarchy ROADMAP item 1 asks for, where
#: the two-level presets stop at 4x8.
TOPOLOGY_FAT_TREE_128 = ClusterTopology.from_levels(
    (
        LinkLevel(8, NODE_INFINIBAND_100G, name="node"),
        LinkLevel(8, CLUSTER_ETHERNET_25G, name="rack"),
        LinkLevel(4, CLUSTER_ETHERNET_25G, oversubscription=2.0, name="pod"),
        LinkLevel(4, CLUSTER_ETHERNET_10G, oversubscription=4.0, name="core"),
    ),
    name="fat-tree-128",
)

#: A dragonfly of 8 groups x 8 nodes x 4 devices (64 nodes, 256 workers):
#: all-to-all 25 Gbps links inside a group, 2:1 oversubscribed 10 Gbps global
#: links between groups.
TOPOLOGY_DRAGONFLY_64 = ClusterTopology.from_levels(
    (
        LinkLevel(4, NODE_INFINIBAND_100G, name="node"),
        LinkLevel(8, CLUSTER_ETHERNET_25G, name="group"),
        LinkLevel(8, CLUSTER_ETHERNET_10G, oversubscription=2.0, name="global"),
    ),
    name="dragonfly-64",
)

TOPOLOGIES: dict[str, ClusterTopology] = {
    "cluster1": TOPOLOGY_CLUSTER1_10G,
    "cluster1-25g": TOPOLOGY_CLUSTER1_25G,
    "cluster2": TOPOLOGY_CLUSTER2_100G,
    "ethernet-4x8": TOPOLOGY_ETHERNET_4X8,
    "torus-2d": TOPOLOGY_TORUS_2D,
    "fat-tree-128": TOPOLOGY_FAT_TREE_128,
    "dragonfly-64": TOPOLOGY_DRAGONFLY_64,
}


def get_topology(name: str) -> ClusterTopology:
    """Look up a predefined cluster topology by short key or full name."""
    return lookup_preset(TOPOLOGIES, name, "topology")
