"""Two-level cluster topology and pluggable collective-algorithm models.

The paper's speed-ups come from two very different fabrics — a TCP 10/25 Gbps
Ethernet cluster of single-GPU servers (Appendix D, Cluster 1) and a 100 Gbps
InfiniBand fabric inside one 8-GPU node (Cluster 2).  A single flat
:class:`~repro.distributed.network.NetworkModel` link cannot express the
difference, nor can one closed form express the algorithms real stacks choose
per fabric (ring vs recursive doubling, flat vs hierarchical sparse
all-gather).

This module models both dimensions:

* :class:`ClusterTopology` — ``num_nodes`` x ``devices_per_node`` workers with
  an *intra-node* link (NVLink/InfiniBand inside a server) and an *inter-node*
  link (the Ethernet between servers).  ``devices_per_node == 1`` or
  ``num_nodes == 1`` degenerates to the old single-level model.
* Collective algorithms — ``ring-allreduce``, ``recursive-doubling``,
  ``flat-allgather`` and ``hierarchical`` — each returning a
  :class:`CollectiveCost` whose per-phase breakdown sums exactly to the total,
  so the event-driven iteration schedule can place every phase on the network
  lane.
* :class:`CollectiveModel` — a topology plus one algorithm choice per
  operation; the single-level case with ``ring-allreduce``/``flat-allgather``
  reproduces ``NetworkModel.allreduce_time``/``allgather_time`` bit-for-bit
  (the golden tests pin this), which is what makes the refactor safe.

Sparse all-gather payloads grow with the participant count (every worker
contributes its own (index, value) selection), which is why the hierarchical
algorithm helps: the inter-node ring exchanges one node-aggregated payload per
node instead of one per device.  The price is that the aggregate must also be
distributed *inside* each node, so hierarchical only wins when the intra-node
link is sufficiently faster than the inter-node link — see
:func:`hierarchical_crossover_factor` for the exact sufficient condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import (
    CLUSTER_ETHERNET_10G,
    CLUSTER_ETHERNET_25G,
    NODE_INFINIBAND_100G,
    NetworkModel,
    lookup_preset,
)

#: Collective operations the algorithm layer knows how to price.
COLLECTIVE_OPS: tuple[str, ...] = ("allreduce", "allgather")


@dataclass(frozen=True)
class ClusterTopology:
    """A two-level cluster: ``num_nodes`` servers with ``devices_per_node`` workers each.

    ``intra_node`` prices traffic between devices inside one server,
    ``inter_node`` prices traffic between servers.  Either level may be
    trivial (``num_nodes == 1`` or ``devices_per_node == 1``), in which case
    the topology is *single-level* and every collective runs over the one
    non-trivial link.
    """

    num_nodes: int
    devices_per_node: int
    inter_node: NetworkModel
    intra_node: NetworkModel
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")

    @property
    def num_workers(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def is_single_level(self) -> bool:
        """True when at most one of the two levels has more than one participant."""
        return self.num_nodes == 1 or self.devices_per_node == 1

    @property
    def bottleneck_link(self) -> NetworkModel:
        """The link a flat (topology-oblivious) collective is gated by.

        A ring laid out node-by-node advances every step at the pace of its
        slowest hop: the inter-node link whenever the ring spans several
        nodes, the intra-node link only inside a single server.
        """
        return self.inter_node if self.num_nodes > 1 else self.intra_node

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, *, name: str = "") -> "ClusterTopology":
        """The degenerate single-level topology: every worker on one shared link."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        return cls(
            num_nodes=num_workers,
            devices_per_node=1,
            inter_node=network,
            intra_node=network,
            name=name or f"flat-{network.name}-x{num_workers}",
        )


@dataclass(frozen=True)
class CollectivePhase:
    """One serial phase of a collective: where it runs, how long, how much it moves."""

    name: str
    link: str
    seconds: float
    volume_bytes: float = 0.0


@dataclass(frozen=True)
class CollectiveCost:
    """Per-phase cost breakdown of one collective operation.

    ``total`` is always the plain sum of the phase durations — phases are
    serial (phase *k+1* consumes phase *k*'s output), which is what lets the
    schedule simulator place them back-to-back on the network lane.
    """

    op: str
    algorithm: str
    num_workers: int
    phases: tuple[CollectivePhase, ...] = ()

    @property
    def total(self) -> float:
        total = 0.0
        for phase in self.phases:
            total += phase.seconds
        return total

    @property
    def volume_bytes(self) -> float:
        return sum(phase.volume_bytes for phase in self.phases)


def _check_payload(num_bytes: float) -> None:
    if num_bytes < 0:
        raise ValueError("payload bytes must be non-negative")


class CollectiveAlgorithm:
    """Base class: prices one or both collective ops over a :class:`ClusterTopology`."""

    name: str = ""
    supported_ops: tuple[str, ...] = ()

    def cost(self, topology: ClusterTopology, op: str, num_bytes: float) -> CollectiveCost:
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {op!r}; known: {list(COLLECTIVE_OPS)}")
        if op not in self.supported_ops:
            raise ValueError(
                f"algorithm {self.name!r} does not model {op!r}; "
                f"it supports {list(self.supported_ops)}"
            )
        _check_payload(num_bytes)
        phases = getattr(self, "_" + op)(topology, num_bytes)
        return CollectiveCost(
            op=op, algorithm=self.name, num_workers=topology.num_workers, phases=tuple(phases)
        )


class RingAllreduce(CollectiveAlgorithm):
    """Ring all-reduce: reduce-scatter then all-gather, ``2(N-1)`` chunk steps.

    On a single-level topology the two phases sum exactly to
    ``NetworkModel.allreduce_time`` (each phase is ``(N-1)`` steps of one
    ``1/N`` chunk; doubling a float is exact, so the split is lossless).
    """

    name = "ring-allreduce"
    supported_ops = ("allreduce",)

    def _allreduce(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        n = topology.num_workers
        if n == 1:
            return []
        link = topology.bottleneck_link
        chunk = num_bytes / n
        seconds = (n - 1) * (link.latency_s + chunk / link.bytes_per_second)
        volume = (n - 1) * chunk
        return [
            CollectivePhase("reduce-scatter", link.name, seconds, volume),
            CollectivePhase("ring-allgather", link.name, seconds, volume),
        ]


class RecursiveDoubling(CollectiveAlgorithm):
    """Recursive doubling: ``ceil(log2 N)`` rounds of pairwise exchange.

    All-reduce exchanges the full buffer every round (few latencies, more
    bytes — the latency-bound regime ring all-reduce loses in).  All-gather
    doubles the gathered block every round, so the total volume matches the
    ring's ``(N-1)`` payloads while paying only ``log2 N`` latencies.
    """

    name = "recursive-doubling"
    supported_ops = ("allreduce", "allgather")

    def _allreduce(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        n = topology.num_workers
        if n == 1:
            return []
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        return [
            CollectivePhase(
                f"round-{k}",
                link.name,
                link.latency_s + num_bytes / link.bytes_per_second,
                num_bytes,
            )
            for k in range(rounds)
        ]

    def _allgather(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        n = topology.num_workers
        if n == 1:
            return []
        link = topology.bottleneck_link
        rounds = math.ceil(math.log2(n))
        phases = []
        for k in range(rounds):
            block = min(2**k, n - 2**k) * num_bytes
            phases.append(
                CollectivePhase(
                    f"round-{k}",
                    link.name,
                    link.latency_s + block / link.bytes_per_second,
                    block,
                )
            )
        return phases


class FlatAllgather(CollectiveAlgorithm):
    """Topology-oblivious ring all-gather: ``N-1`` steps of one payload each.

    The single-level case is, expression for expression, the old
    ``NetworkModel.allgather_time`` closed form; on a multi-node topology
    every step is gated by the inter-node hop (see
    :attr:`ClusterTopology.bottleneck_link`).
    """

    name = "flat-allgather"
    supported_ops = ("allgather",)

    def _allgather(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        n = topology.num_workers
        if n == 1:
            return []
        link = topology.bottleneck_link
        steps = n - 1
        seconds = steps * (link.latency_s + num_bytes / link.bytes_per_second)
        return [CollectivePhase("ring-allgather", link.name, seconds, steps * num_bytes)]


class Hierarchical(CollectiveAlgorithm):
    """Two-level collective: intra-node reduce/gather → inter-node exchange → intra-node broadcast.

    *All-gather* (sparse payloads, one per worker): each node ring-gathers its
    ``D`` device payloads to a leader over the intra-node link, the ``M``
    leaders ring-all-gather their ``D``-payload aggregates over the inter-node
    link, and each leader broadcasts the full ``N``-payload result back to its
    devices.  The inter-node ring thus runs ``M-1`` steps instead of ``N-1``
    and its sparse volume grows with the *node* count, not the device count.

    *All-reduce* (dense): binomial-tree reduce to the node leader, ring
    all-reduce among leaders, binomial broadcast back — volume does not grow
    with participants, so the win is purely fewer inter-node latencies/steps.

    Degenerate cases collapse exactly: ``devices_per_node == 1`` leaves only
    the inter-node phase (identical to the flat/ring algorithm), ``num_nodes
    == 1`` leaves only the intra-node phases, and one worker costs zero.
    """

    name = "hierarchical"
    supported_ops = ("allreduce", "allgather")

    def _allgather(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        m, d, n = topology.num_nodes, topology.devices_per_node, topology.num_workers
        intra, inter = topology.intra_node, topology.inter_node
        phases = []
        if d > 1:
            seconds = (d - 1) * (intra.latency_s + num_bytes / intra.bytes_per_second)
            phases.append(
                CollectivePhase("intra-gather", intra.name, seconds, (d - 1) * num_bytes)
            )
        if m > 1:
            node_payload = d * num_bytes
            seconds = (m - 1) * (inter.latency_s + node_payload / inter.bytes_per_second)
            phases.append(
                CollectivePhase("inter-allgather", inter.name, seconds, (m - 1) * node_payload)
            )
        if d > 1:
            gathered = (n - 1) * num_bytes
            seconds = intra.latency_s + gathered / intra.bytes_per_second
            phases.append(CollectivePhase("intra-broadcast", intra.name, seconds, gathered))
        return phases

    def _allreduce(self, topology: ClusterTopology, num_bytes: float) -> list[CollectivePhase]:
        m, d = topology.num_nodes, topology.devices_per_node
        intra, inter = topology.intra_node, topology.inter_node
        phases = []
        tree_rounds = math.ceil(math.log2(d)) if d > 1 else 0
        tree_seconds = tree_rounds * (intra.latency_s + num_bytes / intra.bytes_per_second)
        if d > 1:
            phases.append(
                CollectivePhase("intra-reduce", intra.name, tree_seconds, tree_rounds * num_bytes)
            )
        if m > 1:
            chunk = num_bytes / m
            seconds = 2 * (m - 1) * (inter.latency_s + chunk / inter.bytes_per_second)
            phases.append(
                CollectivePhase("inter-allreduce", inter.name, seconds, 2 * (m - 1) * chunk)
            )
        if d > 1:
            phases.append(
                CollectivePhase(
                    "intra-broadcast", intra.name, tree_seconds, tree_rounds * num_bytes
                )
            )
        return phases


#: Pluggable collective algorithms, keyed by name.
COLLECTIVE_ALGORITHMS: dict[str, CollectiveAlgorithm] = {
    algo.name: algo
    for algo in (RingAllreduce(), RecursiveDoubling(), FlatAllgather(), Hierarchical())
}


def get_collective_algorithm(name: str, *, op: str | None = None) -> CollectiveAlgorithm:
    """Look up a collective algorithm by name, optionally requiring ``op`` support."""
    key = name.lower()
    if key not in COLLECTIVE_ALGORITHMS:
        raise ValueError(
            f"unknown collective algorithm {name!r}; known: {sorted(COLLECTIVE_ALGORITHMS)}"
        )
    algorithm = COLLECTIVE_ALGORITHMS[key]
    if op is not None and op not in algorithm.supported_ops:
        raise ValueError(
            f"collective algorithm {name!r} does not model {op!r}; "
            f"it supports {list(algorithm.supported_ops)}"
        )
    return algorithm


def hierarchical_crossover_factor(topology: ClusterTopology) -> float:
    """Intra/inter effective-bandwidth ratio above which hierarchical all-gather always wins.

    With serial phases, the hierarchical all-gather must move the full
    ``(N-1)``-payload aggregate over the intra-node link (gather + broadcast)
    to save ``D-1`` of every ``D`` payloads on the inter-node ring, so merely
    matching the inter-node bandwidth is *not* enough — at equal bandwidths it
    moves strictly more bytes than the flat ring.  Comparing the closed forms
    (``p`` the per-worker payload, ``L/b`` latency and effective bandwidth,
    ``a``/``i`` the intra/inter links)::

        hierarchical <= flat
          <=>  D*L_a + (N+D-2) * p/b_a  <=  (N-M)*L_i + (D-1) * p/b_i

    which holds for *every* payload whenever ``L_a <= L_i`` (the intra fabric
    is no slower to start a message; ``D <= N-M`` covers the latency terms)
    and ``b_a >= b_i * (N+D-2)/(D-1)`` — the factor this function returns.
    Multi-GPU servers clear it easily: the 4x8 Ethernet preset needs ~5.4x
    and its InfiniBand intra-node link is ~17x the effective TCP rate.

    Single-level topologies have nothing to cross over, so the factor is
    ``inf`` (hierarchical degenerates to the flat algorithm instead).
    """
    if topology.is_single_level:
        return math.inf
    n, d = topology.num_workers, topology.devices_per_node
    return (n + d - 2) / (d - 1)


@dataclass(frozen=True)
class CollectiveModel:
    """A cluster topology plus one algorithm choice per collective operation.

    The single-level model built by :meth:`flat` with the default algorithms
    reproduces ``NetworkModel.allreduce_time``/``allgather_time`` exactly —
    the old closed forms are the degenerate case of this layer.
    """

    topology: ClusterTopology
    allreduce_algorithm: str = "ring-allreduce"
    allgather_algorithm: str = "flat-allgather"

    def __post_init__(self) -> None:
        get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        get_collective_algorithm(self.allgather_algorithm, op="allgather")

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers

    @classmethod
    def flat(cls, network: NetworkModel, num_workers: int, **kwargs) -> "CollectiveModel":
        """Degenerate single-level model over one shared link (the pre-topology behaviour)."""
        return cls(topology=ClusterTopology.flat(network, num_workers), **kwargs)

    def allreduce_cost(self, num_bytes: float) -> CollectiveCost:
        """Per-phase cost of all-reducing a dense buffer of ``num_bytes``."""
        algorithm = get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        return algorithm.cost(self.topology, "allreduce", num_bytes)

    def allgather_cost(self, payload_bytes_per_worker: float) -> CollectiveCost:
        """Per-phase cost of all-gathering one sparse payload per worker."""
        algorithm = get_collective_algorithm(self.allgather_algorithm, op="allgather")
        return algorithm.cost(self.topology, "allgather", payload_bytes_per_worker)

    def allreduce_time(self, num_bytes: float) -> float:
        return self.allreduce_cost(num_bytes).total

    def allgather_time(self, payload_bytes_per_worker: float) -> float:
        return self.allgather_cost(payload_bytes_per_worker).total


#: Appendix D, Cluster 1: 8 single-GPU servers on 10 Gbps (or 25 Gbps) TCP
#: Ethernet.  One device per node, so the intra-node link never carries
#: collective traffic; it is set to the in-server InfiniBand-class bus for
#: completeness.
TOPOLOGY_CLUSTER1_10G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-10g",
)
TOPOLOGY_CLUSTER1_25G = ClusterTopology(
    num_nodes=8,
    devices_per_node=1,
    inter_node=CLUSTER_ETHERNET_25G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster1-ethernet-25g",
)

#: Appendix D, Cluster 2: one shared server with 8 GPUs on a 100 Gbps
#: InfiniBand/NVLink-class fabric.  Single node, so the inter-node link is
#: idle; it is set to the datacentre Ethernet the server hangs off.
TOPOLOGY_CLUSTER2_100G = ClusterTopology(
    num_nodes=1,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="cluster2-infiniband-100g",
)

#: The two-level scaling scenario the hierarchical algorithms target: 4
#: Cluster 2-class servers (8 devices each on InfiniBand) joined by Cluster
#: 1's 10 Gbps TCP Ethernet.
TOPOLOGY_ETHERNET_4X8 = ClusterTopology(
    num_nodes=4,
    devices_per_node=8,
    inter_node=CLUSTER_ETHERNET_10G,
    intra_node=NODE_INFINIBAND_100G,
    name="ethernet-4x8",
)

TOPOLOGIES: dict[str, ClusterTopology] = {
    "cluster1": TOPOLOGY_CLUSTER1_10G,
    "cluster1-25g": TOPOLOGY_CLUSTER1_25G,
    "cluster2": TOPOLOGY_CLUSTER2_100G,
    "ethernet-4x8": TOPOLOGY_ETHERNET_4X8,
}


def get_topology(name: str) -> ClusterTopology:
    """Look up a predefined cluster topology by short key or full name."""
    return lookup_preset(TOPOLOGIES, name, "topology")
