"""Analytic network model for gradient aggregation time.

The paper's clusters use 10/25 Gbps Ethernet between single-GPU servers and a
100 Gbps InfiniBand fabric inside the 8-GPU node (Appendix D).  Aggregation is
peer-to-peer via collective operations: dense gradients use ring all-reduce,
sparse (index, value) payloads use all-gather because workers select different
indices.  The model prices both from link bandwidth, per-message latency, and
the number of workers — which is exactly the trade-off (volume saved vs
compression overhead paid) that determines the speed-up figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Bandwidth/latency model of the interconnect between workers.

    ``efficiency`` is the fraction of line rate the collective actually
    achieves.  Framework collectives over TCP (Horovod all-reduce/all-gather
    of large float buffers) typically sustain 30-50% of the link bandwidth,
    and that inefficiency is part of why the paper's communication overheads
    are as large as Table 1 reports; modelling it keeps the compute /
    communication balance realistic.
    """

    bandwidth_gbps: float = 10.0
    latency_s: float = 50e-6
    name: str = "ethernet-10g"
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0.0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_s < 0.0:
            raise ValueError("latency_s must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0 * self.efficiency

    def transfer_time(self, num_bytes: float) -> float:
        """Time to push ``num_bytes`` over one link (single message)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / self.bytes_per_second

    def allreduce_time(self, num_bytes: float, num_workers: int) -> float:
        """Ring all-reduce of a dense buffer of ``num_bytes`` across ``num_workers``."""
        self._check_workers(num_workers)
        if num_workers == 1:
            return 0.0
        steps = 2 * (num_workers - 1)
        chunk = num_bytes / num_workers
        return steps * (self.latency_s + chunk / self.bytes_per_second)

    def allgather_time(self, payload_bytes_per_worker: float, num_workers: int) -> float:
        """Ring all-gather where each worker contributes ``payload_bytes_per_worker``."""
        self._check_workers(num_workers)
        if num_workers == 1:
            return 0.0
        steps = num_workers - 1
        return steps * (self.latency_s + payload_bytes_per_worker / self.bytes_per_second)

    @staticmethod
    def _check_workers(num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")


#: The dedicated 8-server cluster of Appendix D (Cluster 1): 10/25 Gbps Ethernet,
#: with the ~35% effective collective efficiency typical of TCP-based Horovod.
CLUSTER_ETHERNET_10G = NetworkModel(bandwidth_gbps=10.0, latency_s=50e-6, name="ethernet-10g", efficiency=0.35)
CLUSTER_ETHERNET_25G = NetworkModel(bandwidth_gbps=25.0, latency_s=30e-6, name="ethernet-25g", efficiency=0.35)

#: The shared multi-GPU node of Appendix D (Cluster 2): 100 Gbps InfiniBand / NVLink-ish.
NODE_INFINIBAND_100G = NetworkModel(bandwidth_gbps=100.0, latency_s=5e-6, name="infiniband-100g", efficiency=0.6)

NETWORKS: dict[str, NetworkModel] = {
    "10g": CLUSTER_ETHERNET_10G,
    "25g": CLUSTER_ETHERNET_25G,
    "100g": NODE_INFINIBAND_100G,
}


def lookup_preset(registry: dict, name: str, kind: str):
    """Resolve a preset by short key or full ``.name``; the error lists both forms."""
    key = name.lower()
    if key in registry:
        return registry[key]
    for model in registry.values():
        if model.name == key:
            return model
    full_names = sorted(model.name for model in registry.values())
    raise ValueError(
        f"unknown {kind} {name!r}; known: {sorted(registry)} (full names: {full_names})"
    )


def get_network(name: str) -> NetworkModel:
    """Look up a predefined network model (``10g``, ``25g``, ``100g``) or by full name."""
    return lookup_preset(NETWORKS, name, "network")
