"""Simulated collective operations over dense and sparse gradients.

These functions perform the *semantics* of the collectives (the aggregated
gradient every worker ends up with) and report the communication volume; the
time cost is priced separately by :class:`repro.distributed.network.NetworkModel`
so experiments can swap interconnects without touching the math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor.sparse import FLOAT_BYTES, SparseGradient, aggregate_sparse


@dataclass(frozen=True)
class CollectiveResult:
    """Aggregated (averaged) gradient plus the per-worker wire volume."""

    aggregated: np.ndarray
    payload_bytes_per_worker: float
    collective: str


def allreduce_dense(gradients: list[np.ndarray]) -> CollectiveResult:
    """Average dense gradients (ring all-reduce semantics)."""
    if not gradients:
        raise ValueError("need at least one gradient")
    flat = [np.asarray(g, dtype=np.float64).ravel() for g in gradients]
    # Check dimensions before np.stack, which would otherwise raise its own
    # generic shape error first and shadow this message.
    if len({g.size for g in flat}) != 1:
        raise ValueError("all gradients must have the same dimension")
    mean = np.stack(flat).mean(axis=0)
    return CollectiveResult(
        aggregated=mean,
        payload_bytes_per_worker=float(mean.size * FLOAT_BYTES),
        collective="allreduce",
    )


def allgather_sparse(gradients: list[SparseGradient]) -> CollectiveResult:
    """Average sparse gradients (all-gather of (index, value) payloads).

    Every worker gathers all sparse contributions and averages them locally;
    the wire volume per worker is the *largest* payload any worker contributed
    because the ring progresses at the pace of the biggest message.
    """
    if not gradients:
        raise ValueError("need at least one sparse gradient")
    total = aggregate_sparse(gradients)
    total /= len(gradients)
    max_payload = max(g.payload_bytes() for g in gradients)
    return CollectiveResult(
        aggregated=total,
        payload_bytes_per_worker=float(max_payload),
        collective="allgather",
    )
