"""Per-worker heterogeneity, fault injection, and sync-mitigation policies.

Everything priced so far assumes a perfect cluster: identical workers, clean
links, nobody leaves.  Real deployments are defined by the opposite — ML
clusters see persistent stragglers (co-located jobs, thermal throttling),
degraded links (oversubscription, flaky NICs) and elastic membership — and
whether aggressive gradient compression makes such a cluster *more* or *less*
straggler-tolerant is exactly the kind of question the paper's comm-bound
argument raises but never answers.  This module supplies the three layers
needed to ask it:

* **Heterogeneity** — :class:`WorkerProfile` / :class:`ClusterProfile` give
  each worker a compute-rate multiplier and a link bandwidth-degradation
  factor.  Rates are *time* multipliers: ``compute=2.0`` means this worker's
  backward pass, compression stream and update take twice as long;
  ``link=2.0`` means its network transfers do.  The homogeneous profile is all
  1.0s and reproduces today's schedules bit-for-bit (the schedulers skip the
  scaling branch entirely at nominal rates).
* **Injection** — :class:`StragglerInjector`, :class:`LinkDegradation` and
  :class:`WorkerChurn` perturb the profile per iteration.  Draws come from
  ``np.random.default_rng((seed, iteration, salt))`` so iteration *t* sees the
  same faults no matter how many times or in which order it is priced —
  injection is a pure function of ``(seed, iteration)``, never of call count.
* **Mitigation** — :class:`SyncPolicy` prices the cluster iteration from the
  per-worker finish times the scheduler computes: ``full-sync`` is today's
  barrier (wait for the slowest), ``backup-workers`` cuts the slowest *k*
  (their gradients are dropped from aggregation), and ``time-window`` is the
  SAGN-style accumulation window — workers finishing within
  ``window_factor x`` the fastest worker's time participate, later ones are
  cut.

Model assumption, stated once: worker *w*'s finish time is *its own* iteration
schedule evaluated at its ``(compute, link)`` rates, i.e. stragglers stretch
their whole lane rather than perturbing individual bucket events, and a slow
worker does not slow the collective of the fast ones (their cost is priced at
nominal rates; the barrier — the sync policy — is where the slow worker
hurts).  That keeps per-worker pricing a two-point memoized evaluation instead
of a full multi-worker event simulation, and matches how straggler studies
report per-replica step times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Recognised synchronization policies, most to least conservative.
SYNC_POLICIES: tuple[str, ...] = ("full-sync", "backup-workers", "time-window")

#: Per-injector-class seed salts: three injectors sharing one seed still draw
#: from independent streams.
_STRAGGLER_SALT = 0x51
_LINK_SALT = 0x11
_CHURN_SALT = 0xC4


def validate_sync_policy(policy: str) -> str:
    """Return ``policy`` if it is a recognised sync policy, else raise."""
    if policy not in SYNC_POLICIES:
        raise ValueError(f"unknown sync policy {policy!r}; known: {list(SYNC_POLICIES)}")
    return policy


def _validate_multiplier(name: str, value: float, *, minimum: float = 0.0) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= minimum:
        raise ValueError(f"{name} must be a finite number > {minimum}, got {value!r}")
    return value


def _validate_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


@dataclass(frozen=True)
class WorkerProfile:
    """One worker's persistent lane rates (time multipliers, 1.0 = nominal)."""

    compute: float = 1.0
    link: float = 1.0

    def __post_init__(self) -> None:
        _validate_multiplier("compute", self.compute)
        _validate_multiplier("link", self.link)


@dataclass(frozen=True)
class ClusterProfile:
    """Persistent per-worker heterogeneity of a cluster."""

    workers: tuple[WorkerProfile, ...]

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("a cluster profile needs at least one worker")
        object.__setattr__(self, "workers", tuple(self.workers))

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def homogeneous_nominal(self) -> bool:
        """True when every worker runs at the nominal (1.0, 1.0) rates."""
        return all(p.compute == 1.0 and p.link == 1.0 for p in self.workers)

    @classmethod
    def homogeneous(cls, num_workers: int) -> "ClusterProfile":
        """The perfect cluster every earlier PR priced: all rates 1.0."""
        return cls(workers=tuple(WorkerProfile() for _ in range(num_workers)))

    @classmethod
    def degraded(
        cls, num_workers: int, *, worker: int = 0, compute: float = 1.0, link: float = 1.0
    ) -> "ClusterProfile":
        """Homogeneous cluster with one deterministic straggler at ``worker``."""
        if not 0 <= worker < num_workers:
            raise ValueError(f"worker must be in [0, {num_workers}), got {worker}")
        profiles = [WorkerProfile() for _ in range(num_workers)]
        profiles[worker] = WorkerProfile(compute=compute, link=link)
        return cls(workers=tuple(profiles))

    @classmethod
    def from_factors(cls, compute, link=None) -> "ClusterProfile":
        """Build a profile from parallel sequences of compute/link multipliers."""
        compute = [float(c) for c in compute]
        link = [1.0] * len(compute) if link is None else [float(x) for x in link]
        if len(link) != len(compute):
            raise ValueError("compute and link factor sequences must have equal length")
        return cls(workers=tuple(WorkerProfile(compute=c, link=m) for c, m in zip(compute, link)))

    @classmethod
    def lognormal(
        cls,
        num_workers: int,
        *,
        compute_sigma: float = 0.2,
        link_sigma: float = 0.0,
        seed: int = 0,
    ) -> "ClusterProfile":
        """Seeded lognormal heterogeneity (mean log 0, so the median rate is 1.0)."""
        if compute_sigma < 0.0 or link_sigma < 0.0:
            raise ValueError("sigma values must be non-negative")
        rng = np.random.default_rng(seed)
        compute = np.exp(rng.normal(0.0, compute_sigma, size=num_workers))
        link = np.exp(rng.normal(0.0, link_sigma, size=num_workers))
        return cls.from_factors(compute.tolist(), link.tolist())

    def rates(self) -> "WorkerRates":
        """The profile as fresh per-worker rate arrays, everyone active."""
        return WorkerRates(
            compute=np.array([p.compute for p in self.workers], dtype=float),
            link=np.array([p.link for p in self.workers], dtype=float),
            active=np.ones(self.num_workers, dtype=bool),
        )


@dataclass(frozen=True, eq=False)
class WorkerRates:
    """Effective per-worker lane rates for one iteration, after injection."""

    compute: np.ndarray
    link: np.ndarray
    active: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.compute) == len(self.link) == len(self.active)):
            raise ValueError("compute, link, and active must have equal length")

    @property
    def num_workers(self) -> int:
        return len(self.compute)

    @property
    def num_active(self) -> int:
        return int(self.active.sum())

    @property
    def active_indices(self) -> list[int]:
        return [int(w) for w in np.flatnonzero(self.active)]

    @property
    def nominal(self) -> bool:
        """True when every active worker runs at exactly (1.0, 1.0)."""
        act = self.active
        return bool(np.all(self.compute[act] == 1.0) and np.all(self.link[act] == 1.0))


@dataclass(frozen=True)
class StragglerInjector:
    """Each iteration, each worker independently straggles with ``probability``.

    A straggling worker's compute rate is multiplied by ``slowdown`` (>= 1) on
    top of its profile rate.  Draws depend only on ``(seed, iteration)``.
    """

    probability: float = 0.1
    slowdown: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        _validate_probability("probability", self.probability)
        if _validate_multiplier("slowdown", self.slowdown) < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown!r}")

    def apply(self, iteration: int, rates: WorkerRates) -> WorkerRates:
        rng = np.random.default_rng((self.seed, iteration, _STRAGGLER_SALT))
        hit = rng.random(rates.num_workers) < self.probability
        compute = np.where(hit, rates.compute * self.slowdown, rates.compute)
        return WorkerRates(compute=compute, link=rates.link, active=rates.active)


@dataclass(frozen=True)
class LinkDegradation:
    """Each iteration, each worker's link independently degrades with ``probability``.

    A degraded worker's link rate is multiplied by ``factor`` (>= 1, i.e. its
    transfers take ``factor`` times longer — a bandwidth cut to ``1/factor``).
    """

    probability: float = 0.1
    factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        _validate_probability("probability", self.probability)
        if _validate_multiplier("factor", self.factor) < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor!r}")

    def apply(self, iteration: int, rates: WorkerRates) -> WorkerRates:
        rng = np.random.default_rng((self.seed, iteration, _LINK_SALT))
        hit = rng.random(rates.num_workers) < self.probability
        link = np.where(hit, rates.link * self.factor, rates.link)
        return WorkerRates(compute=rates.compute, link=link, active=rates.active)


@dataclass
class WorkerChurn:
    """Elastic membership: workers leave and rejoin between iterations.

    Membership follows a deterministic two-state Markov chain per worker: an
    active worker leaves with ``leave_probability``, an inactive one rejoins
    with ``rejoin_probability``, both drawn from ``(seed, iteration)``-keyed
    streams.  The chain is replayed from iteration 0 (with an internal cache),
    so membership at iteration *t* is a pure function of the seed — pricing
    iterations out of order, or twice, cannot change who was present.

    ``min_active`` is a floor: when a draw would leave fewer members, the
    lowest-index inactive workers are re-activated (a scheduler restarting
    replacements), keeping every iteration priceable.
    """

    leave_probability: float = 0.05
    rejoin_probability: float = 0.5
    seed: int = 0
    min_active: int = 1
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        _validate_probability("leave_probability", self.leave_probability)
        _validate_probability("rejoin_probability", self.rejoin_probability)
        if self.min_active < 1:
            raise ValueError(f"min_active must be >= 1, got {self.min_active}")

    def membership(self, iteration: int, num_workers: int) -> np.ndarray:
        """Active mask at ``iteration`` for a ``num_workers`` cluster."""
        if iteration < 0:
            raise ValueError(f"iteration must be non-negative, got {iteration}")
        if num_workers < self.min_active:
            raise ValueError(
                f"num_workers ({num_workers}) is below min_active ({self.min_active})"
            )
        states = self._cache.setdefault(num_workers, [np.ones(num_workers, dtype=bool)])
        while len(states) <= iteration:
            t = len(states)
            previous = states[-1]
            rng = np.random.default_rng((self.seed, t, _CHURN_SALT))
            leave = rng.random(num_workers) < self.leave_probability
            rejoin = rng.random(num_workers) < self.rejoin_probability
            state = np.where(previous, ~leave, rejoin)
            deficit = self.min_active - int(state.sum())
            if deficit > 0:
                state = state.copy()
                state[np.flatnonzero(~state)[:deficit]] = True
            states.append(state)
        return states[iteration].copy()

    def apply(self, iteration: int, rates: WorkerRates) -> WorkerRates:
        active = rates.active & self.membership(iteration, rates.num_workers)
        deficit = self.min_active - int(active.sum())
        if deficit > 0:
            # Another injector (or the caller) already removed workers; keep
            # the floor against the combined membership too.
            active = active.copy()
            active[np.flatnonzero(~active)[:deficit]] = True
        return WorkerRates(compute=rates.compute, link=rates.link, active=active)


@dataclass(frozen=True)
class FaultModel:
    """A cluster profile plus the injectors perturbing it each iteration."""

    profile: ClusterProfile
    injectors: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "injectors", tuple(self.injectors))
        for injector in self.injectors:
            if not callable(getattr(injector, "apply", None)):
                raise ValueError(f"injector {injector!r} has no apply(iteration, rates)")

    def rates_for_iteration(self, iteration: int) -> WorkerRates:
        """Effective rates at ``iteration``: profile first, injectors in order."""
        rates = self.profile.rates()
        for injector in self.injectors:
            rates = injector.apply(iteration, rates)
        return rates


@dataclass(frozen=True, eq=False)
class PolicyOutcome:
    """What a sync policy decided for one iteration."""

    #: The cluster's iteration time: the latest *participating* finish time.
    iteration_seconds: float
    #: Per-worker mask of gradients the policy aggregated.
    participating: np.ndarray
    #: Active workers the policy cut (their gradients are dropped).
    stragglers_cut: int

    @property
    def num_participating(self) -> int:
        return int(self.participating.sum())


class SyncPolicy:
    """Prices the cluster iteration from per-worker finish times.

    ``finish`` is a ``(num_workers,)`` array of per-worker iteration times
    (NaN for inactive workers); ``active`` is the membership mask.  A policy
    decides which active workers participate in aggregation and what the
    cluster-level iteration time is — it never changes the finish times
    themselves.
    """

    name: str = ""

    def price(self, finish: np.ndarray, active: np.ndarray) -> PolicyOutcome:
        raise NotImplementedError

    @staticmethod
    def _check(finish: np.ndarray, active: np.ndarray) -> np.ndarray:
        active = np.asarray(active, dtype=bool)
        if len(finish) != len(active):
            raise ValueError("finish and active must have equal length")
        if not active.any():
            raise ValueError("cannot price an iteration with no active workers")
        return active


@dataclass(frozen=True)
class FullSync(SyncPolicy):
    """Today's barrier: every active worker participates, the slowest gates."""

    name = "full-sync"

    def price(self, finish: np.ndarray, active: np.ndarray) -> PolicyOutcome:
        active = self._check(finish, active)
        return PolicyOutcome(
            iteration_seconds=float(np.max(finish[active])),
            participating=active.copy(),
            stragglers_cut=0,
        )


@dataclass(frozen=True)
class BackupWorkers(SyncPolicy):
    """Cut the slowest ``backup_workers`` active workers from the barrier.

    The classic backup-workers mitigation: provision ``k`` more workers than
    you need and let each iteration proceed once ``n - k`` have finished.  The
    cut workers' gradients are dropped from aggregation.  At most
    ``n_active - 1`` workers are ever cut (someone must produce a gradient),
    and ties break on worker index — the lower index is kept — so the policy
    is deterministic.  ``backup_workers=0`` is exactly ``full-sync``.
    """

    backup_workers: int = 1

    name = "backup-workers"

    def __post_init__(self) -> None:
        if self.backup_workers < 0:
            raise ValueError(f"backup_workers must be >= 0, got {self.backup_workers}")

    def price(self, finish: np.ndarray, active: np.ndarray) -> PolicyOutcome:
        active = self._check(finish, active)
        indices = np.flatnonzero(active)
        cut = min(self.backup_workers, len(indices) - 1)
        if cut > 0:
            order = sorted(indices.tolist(), key=lambda w: (finish[w], w))
            kept = np.array(sorted(order[: len(order) - cut]), dtype=int)
            participating = np.zeros_like(active)
            participating[kept] = True
        else:
            participating = active.copy()
        return PolicyOutcome(
            iteration_seconds=float(np.max(finish[participating])),
            participating=participating,
            stragglers_cut=cut,
        )


@dataclass(frozen=True)
class TimeWindowSync(SyncPolicy):
    """SAGN-style accumulation window anchored at the fastest worker.

    Workers finishing within ``window_factor x`` the fastest active finish
    time participate; later ones are cut from this iteration's aggregation.
    The fastest worker is always inside its own window, so at least one
    gradient always survives, and on a homogeneous cluster every finish time
    ties the minimum — the policy degenerates to ``full-sync`` exactly.
    """

    window_factor: float = 1.5

    name = "time-window"

    def __post_init__(self) -> None:
        if _validate_multiplier("window_factor", self.window_factor) < 1.0:
            raise ValueError(f"window_factor must be >= 1, got {self.window_factor!r}")

    def price(self, finish: np.ndarray, active: np.ndarray) -> PolicyOutcome:
        active = self._check(finish, active)
        indices = np.flatnonzero(active)
        finish_active = finish[indices]
        window = self.window_factor * float(np.min(finish_active))
        keep = finish_active <= window
        participating = np.zeros_like(active)
        participating[indices[keep]] = True
        return PolicyOutcome(
            iteration_seconds=float(np.max(finish_active[keep])),
            participating=participating,
            stragglers_cut=int(len(indices) - keep.sum()),
        )


def get_sync_policy(
    policy: str, *, backup_workers: int = 0, time_window_factor: float | None = None
) -> SyncPolicy:
    """Build the named policy from the flat knob values.

    ``backup_workers`` only applies to ``"backup-workers"`` and
    ``time_window_factor`` only to ``"time-window"`` (``None`` means the
    policy default of 1.5); the callers' config validation rejects
    contradictory combinations before they reach this factory.
    """
    validate_sync_policy(policy)
    if policy == "full-sync":
        return FullSync()
    if policy == "backup-workers":
        return BackupWorkers(backup_workers=backup_workers)
    factor = 1.5 if time_window_factor is None else time_window_factor
    return TimeWindowSync(window_factor=factor)


def worker_finish_times(price, rates: WorkerRates) -> np.ndarray:
    """Per-worker iteration finish times under ``rates`` (NaN when inactive).

    ``price(compute_scale, comm_scale)`` prices one worker's iteration at the
    given lane rates — typically a closure over
    :meth:`TimelineModel.compressed_iteration`.  Distinct ``(compute, link)``
    pairs are memoized, so the common "one straggler" case costs two pricing
    calls no matter how many workers the cluster has, and the nominal pair is
    priced by the unscaled scheduler path (bit-for-bit today's number).
    """
    finish = np.full(rates.num_workers, math.nan)
    memo: dict[tuple[float, float], float] = {}
    for w in rates.active_indices:
        pair = (float(rates.compute[w]), float(rates.link[w]))
        if pair not in memo:
            memo[pair] = float(price(*pair))
        finish[w] = memo[pair]
    return finish


@dataclass(frozen=True, eq=False)
class FaultedIteration:
    """Per-worker finish times plus the policy's verdict for one iteration."""

    finish_seconds: np.ndarray
    outcome: PolicyOutcome

    @property
    def iteration_seconds(self) -> float:
        return self.outcome.iteration_seconds


def price_iteration(price, rates: WorkerRates, policy: SyncPolicy) -> FaultedIteration:
    """Price one cluster iteration: per-worker finish times, then the policy."""
    finish = worker_finish_times(price, rates)
    return FaultedIteration(finish_seconds=finish, outcome=policy.price(finish, rates.active))
