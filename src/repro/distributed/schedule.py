"""Event-driven schedule of one compressed training iteration.

The paper's wall-clock speed-ups only materialise when the compression and
communication of bucket *i* overlap with the backpropagation / compression of
bucket *i+1* — a flat ``compute + compression + communication`` sum (the old
timeline pricing) models a stack that serialises everything and therefore
overstates the iteration time of every real DDP/Horovod deployment.

This module replaces the closed-form sum with a small event-driven simulator.
One iteration is a set of per-bucket :class:`BucketTask` jobs scheduled on two
resource lanes:

* the **compute lane** runs backpropagation from ``t = 0`` to
  ``compute_seconds`` and produces each bucket's gradient at its
  ``ready_seconds`` (reverse layer order: the last layer's gradients are ready
  first); compression jobs serialise with each other on this lane's
  compression stream,
* the **network lane** runs one all-gather per bucket; transfers serialise on
  the ring, so bucket *i*'s all-gather starts only when bucket *i-1*'s has
  drained.

With ``cross_bucket_pipeline=True`` the single network lane splits into
**per-link lanes**: every fabric a collective phase names (the intra-node and
inter-node links of a two-level topology) is an independent resource, and a
bucket's phase pattern is slid, as one rigid template, to the earliest time it
fits on *all* of its links.  Bucket *i+1*'s intra-node gather then runs while
bucket *i*'s inter-node exchange still occupies the other fabric — the
cross-bucket pipelining the serial lane forbids by treating each collective as
one opaque occupancy.  Rigid sliding preserves every bucket's internal phase
placement, so per-bucket communication time is conserved and the cross-bucket
schedule is never slower than the serial-lane one (each bucket can always fall
back to starting where the serial lane would have started it).

What may start when is governed by the overlap policy:

``"none"``
    Fully serialised: compression starts after the whole backward pass, the
    first all-gather starts after the *last* compression finishes.  The
    critical path degenerates to the exact closed-form sum
    ``compute + sum(compress) + sum(comm) + update``.
``"comm"``
    Communication overlaps compute/compression: bucket *i*'s all-gather starts
    as soon as its own compression is done (and the ring is free), while
    compression still waits for the full backward pass.
``"comm+compress"``
    Additionally, bucket *i*'s compression starts at its gradient-ready time,
    on a stream that runs concurrently with the remaining backpropagation.

The simulator returns the full per-bucket event trace plus the critical-path
iteration time, so callers can report overlapped vs serialised time and the
overlap efficiency, not just a single scalar.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass

import numpy as np

#: Recognised overlap policies, weakest to strongest.
OVERLAP_POLICIES: tuple[str, ...] = ("none", "comm", "comm+compress")

#: Scheduler implementations: the scalar reference loop and the batched-NumPy
#: core that reproduces it bit-for-bit.
SCHEDULER_BACKENDS: tuple[str, ...] = ("loop", "vectorized")


def validate_overlap(policy: str) -> str:
    """Return ``policy`` if it is a recognised overlap policy, else raise."""
    if policy not in OVERLAP_POLICIES:
        raise ValueError(f"unknown overlap policy {policy!r}; known: {list(OVERLAP_POLICIES)}")
    return policy


def validate_scheduler_backend(backend: str) -> str:
    """Return ``backend`` if it is a recognised scheduler backend, else raise."""
    if backend not in SCHEDULER_BACKENDS:
        raise ValueError(
            f"unknown scheduler backend {backend!r}; known: {list(SCHEDULER_BACKENDS)}"
        )
    return backend


def validate_cross_bucket(cross_bucket_pipeline: bool) -> bool:
    """Return ``cross_bucket_pipeline`` if it is a plain bool, else raise.

    The knob gates a structural change to the network lanes, so a truthy
    non-bool (``1``, ``"false"``, ...) is more likely a mis-threaded config
    value than an intentional choice — fail fast like the other knobs.
    """
    if not isinstance(cross_bucket_pipeline, bool):
        raise ValueError(
            f"cross_bucket_pipeline must be a bool, got {cross_bucket_pipeline!r}"
        )
    return cross_bucket_pipeline


def validate_rate(name: str, value: float) -> float:
    """Return ``value`` as a float if it is a usable lane-rate multiplier.

    Lane rates are *time* multipliers (2.0 = twice as slow), so they must be
    positive and finite; 1.0 is the nominal rate.
    """
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite multiplier, got {value!r}")
    return value


def _scaled_task(task: BucketTask, compute_scale: float, comm_scale: float) -> BucketTask:
    """``task`` with compute-lane times x ``compute_scale`` and network times x ``comm_scale``.

    Ready and compression times live on the compute lane (backprop produces
    the gradient, the compression stream shares the device), communication
    phases live on the network lane.  Multiplying by exactly 1.0 is bit-exact
    in IEEE, but callers still skip this entirely at (1.0, 1.0) so the nominal
    path is provably byte-identical to the unscaled scheduler.
    """
    if task.has_placed_phases:
        phases: tuple[tuple, ...] = tuple(
            (name, seconds * comm_scale, start * comm_scale, link)
            for name, seconds, start, link in task.comm_phases
        )
    else:
        phases = tuple(
            (name, seconds * comm_scale) for name, seconds in task.comm_phases
        )
    return BucketTask(
        index=task.index,
        ready_seconds=task.ready_seconds * compute_scale,
        compress_seconds=task.compress_seconds * compute_scale,
        comm_seconds=task.comm_seconds * comm_scale,
        comm_phases=phases,
    )


@dataclass(frozen=True)
class BucketTask:
    """Work one gradient bucket contributes to the iteration (durations in seconds).

    ``comm_phases`` optionally breaks the bucket's collective into named
    phases.  Two entry shapes are accepted (one shape per task, not mixed):

    * ``(name, seconds)`` — serial phases placed back-to-back; the durations
      must sum to ``comm_seconds`` (the pre-pipeline contract).
    * ``(name, seconds, start, link)`` — explicitly placed phases from a
      chunk-pipelined collective: ``start`` is the offset inside the bucket's
      network occupancy and ``link`` names the fabric the phase runs on.
      Phases on *different* links may overlap (that is the point of
      pipelining), phases on one link must not, and the last phase must end
      at ``comm_seconds``.
    """

    index: int
    ready_seconds: float
    compress_seconds: float
    comm_seconds: float
    comm_phases: tuple[tuple, ...] = ()

    @property
    def has_placed_phases(self) -> bool:
        """True when the phases carry explicit pipelined placements."""
        return bool(self.comm_phases) and len(self.comm_phases[0]) == 4

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")
        for name in ("ready_seconds", "compress_seconds", "comm_seconds"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")
        if not self.comm_phases:
            object.__setattr__(self, "comm_phases", ())
            return
        widths = {len(entry) for entry in self.comm_phases}
        if widths == {2}:
            phases = tuple((str(name), float(seconds)) for name, seconds in self.comm_phases)
            object.__setattr__(self, "comm_phases", phases)
            if any(seconds < 0.0 for _, seconds in phases):
                raise ValueError("comm phase durations must be non-negative")
            total = sum(seconds for _, seconds in phases)
            if abs(total - self.comm_seconds) > 1e-9 * max(1.0, self.comm_seconds):
                raise ValueError(
                    f"comm_phases sum to {total!r} but comm_seconds is {self.comm_seconds!r}"
                )
            return
        if widths != {4}:
            raise ValueError(
                "comm_phases entries must be uniformly (name, seconds) or "
                "(name, seconds, start, link)"
            )
        phases = tuple(
            (str(name), float(seconds), float(start), str(link))
            for name, seconds, start, link in self.comm_phases
        )
        object.__setattr__(self, "comm_phases", phases)
        tolerance = 1e-9 * max(1.0, self.comm_seconds)
        if any(seconds < 0.0 or start < 0.0 for _, seconds, start, _ in phases):
            raise ValueError("comm phase durations and starts must be non-negative")
        last_end = max(start + seconds for _, seconds, start, _ in phases)
        if abs(last_end - self.comm_seconds) > tolerance:
            raise ValueError(
                f"placed comm_phases end at {last_end!r} but comm_seconds is "
                f"{self.comm_seconds!r}"
            )
        by_link: dict[str, list[tuple[float, float]]] = {}
        for _, seconds, start, link in phases:
            by_link.setdefault(link, []).append((start, start + seconds))
        for link, spans in by_link.items():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                if b_start < a_end - tolerance:
                    raise ValueError(f"placed comm_phases overlap on link {link!r}")


@dataclass(frozen=True)
class PhaseEvent:
    """Absolute start/end of one named collective phase on the network lane.

    ``link`` names the fabric the phase occupies (empty for single-link
    collectives priced before the topology layer); pipelined phases on
    different links may overlap in time, phases sharing a link never do.
    """

    name: str
    start: float
    end: float
    link: str = ""


@dataclass(frozen=True)
class BucketEvent:
    """Scheduled start/end times of one bucket's compress and all-gather jobs.

    ``phases`` subdivides ``[comm_start, comm_end]`` into the collective's
    serial phases when the task carried a per-phase breakdown (empty for
    single-phase collectives priced as one span).
    """

    index: int
    ready: float
    compress_start: float
    compress_end: float
    comm_start: float
    comm_end: float
    phases: tuple[PhaseEvent, ...] = ()


@dataclass(frozen=True)
class IterationSchedule:
    """Event trace plus critical-path time of one simulated iteration."""

    policy: str
    compute_seconds: float
    update_seconds: float
    events: tuple[BucketEvent, ...]
    #: Critical-path end-to-end time of the iteration (including the update).
    iteration_seconds: float
    #: The ``overlap="none"`` closed-form sum for the same workload.
    serialized_seconds: float
    #: True when buckets were scheduled on per-link network lanes (cross-bucket
    #: pipelining); False for the serial whole-occupancy network lane.
    cross_bucket: bool = False

    @property
    def total_compress_seconds(self) -> float:
        return sum(e.compress_end - e.compress_start for e in self.events)

    @property
    def total_comm_seconds(self) -> float:
        return sum(e.comm_end - e.comm_start for e in self.events)

    @property
    def overlap_saving(self) -> float:
        """Fraction of the serialised iteration the overlap policy saved."""
        if self.serialized_seconds <= 0.0:
            return 0.0
        return 1.0 - self.iteration_seconds / self.serialized_seconds

    def link_utilization(self) -> dict[str, dict[str, float]]:
        """Per-link busy time over the network's active window, by fabric.

        Phases are attributed to the link they name (collectives priced before
        the topology layer, and buckets without a phase breakdown, occupy the
        anonymous ``""`` lane).  ``utilization`` is the link's busy time over
        the window from the first to the last communication event — the
        quantity cross-bucket pipelining raises by letting one fabric work
        while another bucket occupies the other.

        A schedule with no communication events at all (every bucket empty)
        reports no lanes: the empty dict, never an ``inf``/NaN window.
        """
        busy: dict[str, float] = {}
        first: float | None = None
        last = 0.0
        for event in self.events:
            if event.comm_end <= event.comm_start and not event.phases:
                continue
            first = event.comm_start if first is None else min(first, event.comm_start)
            last = max(last, event.comm_end)
            if event.phases:
                for phase in event.phases:
                    busy[phase.link] = busy.get(phase.link, 0.0) + (phase.end - phase.start)
            else:
                busy[""] = busy.get("", 0.0) + (event.comm_end - event.comm_start)
        if first is None:
            # No event contributed: the window is undefined, not [inf, 0].
            return {}
        window = max(last - first, 0.0)
        return {
            link: {
                "busy_seconds": seconds,
                "window_seconds": window,
                "utilization": seconds / window if window > 0.0 else 0.0,
            }
            for link, seconds in sorted(busy.items())
        }


@dataclass(frozen=True, eq=False)
class ScheduleArrays:
    """Array-backed iteration schedule — the vectorized backend's native form.

    Semantically the same trace as :class:`IterationSchedule`, held as
    ``(bucket,)`` and ``(bucket, phase)`` NumPy arrays in bucket-index order
    instead of per-bucket event objects: for a fixed topology every bucket's
    collective has the same phase structure, so one ``phase_names``/
    ``phase_links`` template shared across rows replaces thousands of
    :class:`PhaseEvent` constructions per simulated iteration.  Scalars and
    arrays are bit-identical to the loop backend's; :meth:`to_schedule`
    materializes the exact :class:`IterationSchedule` the loop would have
    produced (pinned by the golden schedule tests), so anything needing the
    object trace can convert losslessly.

    The duck-typed reporting surface (``policy``, ``cross_bucket``,
    ``iteration_seconds``, ``overlap_saving``, ``link_utilization()``...)
    matches :class:`IterationSchedule`, so harness formatters accept either.
    """

    policy: str
    compute_seconds: float
    update_seconds: float
    iteration_seconds: float
    serialized_seconds: float
    cross_bucket: bool
    #: (B,) per-bucket gradient-ready / compression / communication times.
    ready: np.ndarray
    compress_start: np.ndarray
    compress_end: np.ndarray
    comm_start: np.ndarray
    comm_end: np.ndarray
    #: Shared per-phase template: names and fabric lanes of the P columns.
    phase_names: tuple[str, ...]
    phase_links: tuple[str, ...]
    #: (B, P) absolute phase placements.
    phase_start: np.ndarray
    phase_end: np.ndarray

    @property
    def num_buckets(self) -> int:
        return len(self.ready)

    @property
    def total_compress_seconds(self) -> float:
        return sum((self.compress_end - self.compress_start).tolist())

    @property
    def total_comm_seconds(self) -> float:
        return sum((self.comm_end - self.comm_start).tolist())

    @property
    def overlap_saving(self) -> float:
        """Fraction of the serialised iteration the overlap policy saved."""
        if self.serialized_seconds <= 0.0:
            return 0.0
        return 1.0 - self.iteration_seconds / self.serialized_seconds

    @property
    def events(self) -> tuple[BucketEvent, ...]:
        """The materialized per-bucket event objects (built on demand)."""
        return self.to_schedule().events

    def link_utilization(self) -> dict[str, dict[str, float]]:
        """Per-link busy time over the network's active window, by fabric.

        Delegates to the materialized trace so the numbers are bit-identical
        to the loop backend's — utilization is a reporting call, not part of
        the scheduling hot path.
        """
        return self.to_schedule().link_utilization()

    def to_schedule(self) -> IterationSchedule:
        """Materialize the bit-identical :class:`IterationSchedule` object trace."""
        num_phases = len(self.phase_names)
        events = []
        for b in range(self.num_buckets):
            phases = tuple(
                PhaseEvent(
                    name=self.phase_names[p],
                    start=float(self.phase_start[b, p]),
                    end=float(self.phase_end[b, p]),
                    link=self.phase_links[p],
                )
                for p in range(num_phases)
            )
            events.append(
                BucketEvent(
                    index=b,
                    ready=float(self.ready[b]),
                    compress_start=float(self.compress_start[b]),
                    compress_end=float(self.compress_end[b]),
                    comm_start=float(self.comm_start[b]),
                    comm_end=float(self.comm_end[b]),
                    phases=phases,
                )
            )
        return IterationSchedule(
            policy=self.policy,
            compute_seconds=self.compute_seconds,
            update_seconds=self.update_seconds,
            events=tuple(events),
            iteration_seconds=self.iteration_seconds,
            serialized_seconds=self.serialized_seconds,
            cross_bucket=self.cross_bucket,
        )


def _comm_layout(task: BucketTask) -> list[tuple[float, float, str]]:
    """The task's rigid network template: ``(offset, seconds, link)`` spans.

    Placed phases keep their explicit offsets and links; serial phases tile
    back-to-back; tasks without a phase breakdown occupy the anonymous ``""``
    lane for their whole duration.  The ``""`` lane conflicts with *every*
    named lane (see :func:`_conflicting_lanes`), so buckets priced before the
    topology layer serialise against each other and against placed-phase
    buckets alike — one physical network, nothing to overlap.
    """
    if task.has_placed_phases:
        return [(start, seconds, link) for _, seconds, start, link in task.comm_phases]
    if task.comm_phases:
        layout = []
        cursor = 0.0
        for name, seconds in task.comm_phases:
            layout.append((cursor, seconds, ""))
            cursor += seconds
        return layout
    return [(0.0, task.comm_seconds, "")]


def _first_conflict_end(
    spans: list[tuple[float, float]], start: float, end: float
) -> float | None:
    """End of the earliest committed span overlapping ``[start, end)``, if any.

    ``spans`` is sorted and pairwise non-overlapping (the scheduler only ever
    commits conflict-free spans), so at most two candidates need checking: the
    last span starting at or before ``start`` (it may straddle ``start``) and
    the first span starting after it (it may begin before ``end``).
    """
    tolerance = 1e-12 * max(1.0, abs(end))
    i = bisect_right(spans, (start, math.inf))
    if i > 0 and spans[i - 1][1] > start + tolerance:
        return spans[i - 1][1]
    if i < len(spans) and spans[i][0] < end - tolerance:
        return spans[i][1]
    return None


def _conflicting_lanes(
    link: str, link_spans: dict[str, list[tuple[float, float]]]
) -> list[list[tuple[float, float]]]:
    """The committed span lists a phase on ``link`` must not overlap.

    The anonymous ``""`` lane stands for *the* network of a collective priced
    before the topology layer — physically the same wires as every named
    fabric — so it conflicts with all lanes and all lanes conflict with it.
    Without this, a phaseless bucket would ride "for free" alongside another
    bucket's placed phases, double-counting the hardware.
    """
    if link == "":
        return list(link_spans.values())
    lanes = [link_spans[link]] if link in link_spans else []
    if "" in link_spans:
        lanes.append(link_spans[""])
    return lanes


def _earliest_template_fit(
    layout: list[tuple[float, float, str]],
    gate: float,
    link_spans: dict[str, list[tuple[float, float]]],
) -> float:
    """Earliest ``t >= gate`` at which the rigid template fits on every link.

    A candidate start is infeasible when any template span overlaps a span
    already committed to a conflicting lane; the only way to clear a conflict
    while moving forward in time is to push the template until the conflicting
    phase starts at the committed span's end, so the bump-and-recheck loop
    finds the *minimal* feasible start.  Because the serial-lane start (after
    every earlier bucket has fully drained) is always feasible, this start is
    never later than the serial lane's — cross-bucket pipelining cannot lose.
    """
    t = gate
    while True:
        bump = None
        for offset, seconds, link in layout:
            if seconds <= 0.0:
                continue
            for spans in _conflicting_lanes(link, link_spans):
                conflict_end = _first_conflict_end(
                    spans, t + offset, t + offset + seconds
                )
                if conflict_end is not None:
                    bump = conflict_end - offset
                    break
            if bump is not None:
                break
        if bump is None:
            return t
        t = bump


def simulate_iteration(
    tasks: list[BucketTask],
    *,
    compute_seconds: float,
    overlap: str = "none",
    update_seconds: float = 0.0,
    cross_bucket_pipeline: bool = False,
    compute_scale: float = 1.0,
    comm_scale: float = 1.0,
) -> IterationSchedule:
    """Schedule per-bucket compress/all-gather jobs and return the event trace.

    Buckets are processed in gradient-ready order (ties broken by index), which
    is how DDP-style stacks drain their fusion buffers — and, for layer-aware
    buckets, is exactly reverse-layer priority order.  ``ready_seconds`` beyond
    ``compute_seconds`` is allowed (a caller may model delayed readiness), but
    the usual construction derives ready times as fractions of the backward
    pass.

    ``cross_bucket_pipeline=False`` serialises buckets on one network lane as
    whole occupancies (the pre-cross-bucket behaviour, reproduced bit-for-bit);
    ``True`` schedules each bucket's per-link phase template on independent
    per-link lanes, so consecutive buckets overlap wherever they occupy
    different fabrics.

    ``compute_scale``/``comm_scale`` are per-worker lane rates for the fault
    layer (:mod:`repro.distributed.faults`): a straggler's schedule is this
    worker's own iteration with its compute lane (backward pass, compression
    stream, update) slowed by ``compute_scale`` and its network lane slowed by
    ``comm_scale``.  At the nominal ``(1.0, 1.0)`` the scaling branch is not
    taken at all, so homogeneous profiles reproduce today's schedules
    bit-for-bit.
    """
    validate_overlap(overlap)
    validate_cross_bucket(cross_bucket_pipeline)
    if compute_seconds < 0.0 or update_seconds < 0.0:
        raise ValueError("compute_seconds and update_seconds must be non-negative")
    compute_scale = validate_rate("compute_scale", compute_scale)
    comm_scale = validate_rate("comm_scale", comm_scale)
    if compute_scale != 1.0 or comm_scale != 1.0:
        tasks = [_scaled_task(task, compute_scale, comm_scale) for task in tasks]
        compute_seconds = compute_seconds * compute_scale
        update_seconds = update_seconds * compute_scale

    order = sorted(tasks, key=lambda t: (t.ready_seconds, t.index))

    # Compression stream: serialises compression jobs; gated per policy.  No
    # policy may compress a gradient before it exists, so the full-backward
    # gate still honours a ready time beyond compute_seconds.
    compress_free = 0.0
    compress_spans: dict[int, tuple[float, float]] = {}
    for task in order:
        if overlap == "comm+compress":
            gate = task.ready_seconds
        else:
            gate = max(compute_seconds, task.ready_seconds)
        start = max(gate, compress_free)
        end = start + task.compress_seconds
        compress_spans[task.index] = (start, end)
        compress_free = end

    # Network: one all-gather per bucket.  The serial lane holds each bucket as
    # one opaque occupancy; the cross-bucket pipeline slides each bucket's
    # rigid phase template to the earliest time it fits on every link it uses.
    all_compressed = compress_free
    comm_free = 0.0
    link_spans: dict[str, list[tuple[float, float]]] = {}
    events: list[BucketEvent] = []
    for task in order:
        compress_start, compress_end = compress_spans[task.index]
        gate = all_compressed if overlap == "none" else compress_end
        if cross_bucket_pipeline:
            layout = _comm_layout(task)
            start = _earliest_template_fit(layout, gate, link_spans)
            for offset, seconds, link in layout:
                if seconds > 0.0:
                    insort(link_spans.setdefault(link, []), (start + offset, start + offset + seconds))
        else:
            start = max(gate, comm_free)
        end = start + task.comm_seconds
        comm_free = end
        phases: list[PhaseEvent] = []
        if task.has_placed_phases:
            # Pipelined placement: each phase rides at its explicit offset
            # inside the bucket's network occupancy, keeping per-link
            # exclusivity while phases on different links overlap.
            for name, seconds, offset, link in task.comm_phases:
                phases.append(
                    PhaseEvent(name=name, start=start + offset, end=start + offset + seconds, link=link)
                )
        elif task.comm_phases:
            cursor = start
            for phase_index, (name, seconds) in enumerate(task.comm_phases):
                # The last phase absorbs any accumulated rounding so the phase
                # spans tile [comm_start, comm_end] exactly.
                phase_end = end if phase_index == len(task.comm_phases) - 1 else cursor + seconds
                phases.append(PhaseEvent(name=name, start=cursor, end=phase_end))
                cursor = phase_end
        events.append(
            BucketEvent(
                index=task.index,
                ready=task.ready_seconds,
                compress_start=compress_start,
                compress_end=compress_end,
                comm_start=start,
                comm_end=end,
                phases=tuple(phases),
            )
        )
    events.sort(key=lambda e: e.index)

    last_comm = max((e.comm_end for e in events), default=0.0)
    iteration = max(compute_seconds, compress_free, last_comm) + update_seconds
    serialized = (
        compute_seconds
        + sum(t.compress_seconds for t in tasks)
        + sum(t.comm_seconds for t in tasks)
        + update_seconds
    )
    return IterationSchedule(
        policy=overlap,
        compute_seconds=compute_seconds,
        update_seconds=update_seconds,
        events=tuple(events),
        iteration_seconds=iteration,
        serialized_seconds=serialized,
        cross_bucket=cross_bucket_pipeline,
    )


def simulate_iteration_arrays(
    *,
    ready_seconds,
    compress_seconds,
    phase_seconds,
    phase_names: tuple[str, ...],
    phase_links: tuple[str, ...],
    compute_seconds: float,
    overlap: str = "none",
    update_seconds: float = 0.0,
    cross_bucket_pipeline: bool = False,
    compute_scale: float = 1.0,
    comm_scale: float = 1.0,
) -> ScheduleArrays:
    """Batched-NumPy :func:`simulate_iteration`, bit-identical to the loop.

    Takes the per-bucket workload as arrays — ``ready_seconds`` and
    ``compress_seconds`` of shape ``(B,)`` plus a ``(B, P)`` matrix of serial
    per-phase communication durations sharing one ``phase_names``/
    ``phase_links`` template (the shape every batched collective pricing
    produces; each bucket's total communication time is its row's cumulative
    sum) — and returns the same schedule the loop backend would build from the
    equivalent :class:`BucketTask` list, as :class:`ScheduleArrays`.

    Bit-for-bit equality with the loop is a hard contract, which dictates the
    implementation split: the sequential recurrences (compression stream,
    serial network lane, template fitting) stay scalar Python-float loops —
    reassociating them would change IEEE rounding — while everything
    elementwise (phase offsets/cumsums, absolute phase placement) runs as
    NumPy matrix ops, whose per-element operation order matches the scalar
    expressions exactly.  The speedup comes from skipping the loop backend's
    per-bucket object churn (``CollectivePhase``/``BucketTask`` validation/
    ``PhaseEvent``), not from changing the arithmetic.

    ``compute_scale``/``comm_scale`` slow this worker's compute and network
    lanes like :func:`simulate_iteration` does.  Bit-for-bit loop equality is
    only pinned at the nominal ``(1.0, 1.0)`` rates: at scaled rates the loop
    backend scales each bucket's precomputed communication total while this
    backend scales the per-phase matrix before the cumulative sum, which can
    differ in the last ulp (IEEE multiplication does not distribute over
    addition).
    """
    validate_overlap(overlap)
    validate_cross_bucket(cross_bucket_pipeline)
    if compute_seconds < 0.0 or update_seconds < 0.0:
        raise ValueError("compute_seconds and update_seconds must be non-negative")
    compute_scale = validate_rate("compute_scale", compute_scale)
    comm_scale = validate_rate("comm_scale", comm_scale)
    ready = np.asarray(ready_seconds, dtype=float)
    compress = np.asarray(compress_seconds, dtype=float)
    num_buckets = ready.shape[0]
    phase_seconds = np.asarray(phase_seconds, dtype=float)
    if phase_seconds.ndim != 2 or phase_seconds.shape[0] != num_buckets:
        raise ValueError(
            f"phase_seconds must be (num_buckets, num_phases), got {phase_seconds.shape}"
        )
    num_phases = phase_seconds.shape[1]
    if len(phase_names) != num_phases or len(phase_links) != num_phases:
        raise ValueError("phase_names and phase_links must match phase_seconds columns")
    if compress.shape != (num_buckets,):
        raise ValueError("compress_seconds must match ready_seconds in shape")
    if ready.size and (ready.min() < 0.0 or compress.min() < 0.0 or phase_seconds.min() < 0.0):
        raise ValueError("per-bucket times must be non-negative")
    if compute_scale != 1.0 or comm_scale != 1.0:
        ready = ready * compute_scale
        compress = compress * compute_scale
        phase_seconds = phase_seconds * comm_scale
        compute_seconds = compute_seconds * compute_scale
        update_seconds = update_seconds * compute_scale

    # Serial phase offsets inside each bucket's occupancy: the cursor walk is
    # a cumulative sum, so offset[:, p] is the end of column p-1.
    ends = np.cumsum(phase_seconds, axis=1)
    offsets = np.zeros_like(phase_seconds)
    if num_phases:
        offsets[:, 1:] = ends[:, :-1]
        comm = ends[:, -1]
    else:
        comm = np.zeros(num_buckets)

    ready_list = ready.tolist()
    compress_list = compress.tolist()
    comm_list = comm.tolist()
    order = sorted(range(num_buckets), key=lambda i: (ready_list[i], i))

    # Compression stream: the same sequential max/add recurrence as the loop,
    # on plain Python floats (cheap at O(B), and exactly associative with it).
    compress_start_list = [0.0] * num_buckets
    compress_end_list = [0.0] * num_buckets
    compress_free = 0.0
    for i in order:
        if overlap == "comm+compress":
            gate = ready_list[i]
        else:
            gate = max(compute_seconds, ready_list[i])
        start = max(gate, compress_free)
        end = start + compress_list[i]
        compress_start_list[i] = start
        compress_end_list[i] = end
        compress_free = end

    # Network lane(s): serial occupancy recurrence, or the same rigid
    # per-link template fitting the loop backend uses.
    all_compressed = compress_free
    comm_start_list = [0.0] * num_buckets
    comm_end_list = [0.0] * num_buckets
    comm_free = 0.0
    link_spans: dict[str, list[tuple[float, float]]] = {}
    offsets_rows = offsets.tolist() if cross_bucket_pipeline else None
    seconds_rows = phase_seconds.tolist() if cross_bucket_pipeline else None
    for i in order:
        gate = all_compressed if overlap == "none" else compress_end_list[i]
        if cross_bucket_pipeline:
            if num_phases:
                layout = list(zip(offsets_rows[i], seconds_rows[i], phase_links))
            else:
                layout = [(0.0, comm_list[i], "")]
            start = _earliest_template_fit(layout, gate, link_spans)
            for offset, seconds, link in layout:
                if seconds > 0.0:
                    insort(
                        link_spans.setdefault(link, []),
                        (start + offset, start + offset + seconds),
                    )
        else:
            start = max(gate, comm_free)
        end = start + comm_list[i]
        comm_free = end
        comm_start_list[i] = start
        comm_end_list[i] = end

    comm_start = np.asarray(comm_start_list)
    phase_start = comm_start[:, None] + offsets
    last_comm = max(comm_end_list) if num_buckets else 0.0
    iteration = max(compute_seconds, compress_free, last_comm) + update_seconds
    serialized = (
        compute_seconds + sum(compress_list) + sum(comm_list) + update_seconds
    )
    return ScheduleArrays(
        policy=overlap,
        compute_seconds=compute_seconds,
        update_seconds=update_seconds,
        iteration_seconds=iteration,
        serialized_seconds=serialized,
        cross_bucket=cross_bucket_pipeline,
        ready=ready,
        compress_start=np.asarray(compress_start_list),
        compress_end=np.asarray(compress_end_list),
        comm_start=comm_start,
        comm_end=np.asarray(comm_end_list),
        phase_names=tuple(phase_names),
        phase_links=tuple(phase_links),
        phase_start=phase_start,
        phase_end=phase_start + phase_seconds,
    )


def ready_times_from_fractions(fractions, compute_seconds: float) -> list[float]:
    """Map per-bucket backward-pass fractions onto absolute gradient-ready times."""
    times = []
    for f in fractions:
        if not 0.0 <= f <= 1.0:
            raise ValueError(f"ready fraction must be in [0, 1], got {f}")
        times.append(f * compute_seconds)
    return times
