"""Training-run metrics: the quantities the paper's figures plot.

Every iteration the trainer appends an :class:`IterationRecord`; the
:class:`TrainingMetrics` container then derives the figure-level series and
scalars — loss vs iteration / wall-time (Figures 4, 10), running-average
compression ratio (Figure 9), average throughput (Figures 3b/e, 6b/e),
estimation quality with a 90% confidence interval (Figures 1c, 3c/f, 5b, 6c/f)
and normalised training speed-up (Figures 3a/d, 5a/c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration measurements from the distributed trainer."""

    iteration: int
    loss: float
    achieved_ratio: float
    target_ratio: float
    threshold: float | None
    compute_time: float
    compression_time: float
    communication_time: float
    iteration_time: float
    wall_time: float
    samples: int
    learning_rate: float
    #: The flat compute + compression + communication + update sum for the
    #: same iteration; equals ``iteration_time`` when the overlap policy is
    #: ``"none"``, and upper-bounds it otherwise.
    serialized_time: float = 0.0
    #: Achieved sparse-dedup ratio of the iteration's collectives
    #: (concatenated / deduplicated node-aggregate size; 1.0 when dedup is
    #: off or the iteration all-reduced dense gradients).
    dedup_ratio: float = 1.0
    #: Workers whose gradients the sync policy aggregated this iteration
    #: (active minus cut); ``None`` on fault-free runs, where every worker
    #: participates by construction.
    participating_workers: int | None = None
    #: Active workers the sync policy cut from this iteration's barrier
    #: (backup-workers / time-window); 0 on fault-free runs.
    stragglers_cut: int = 0


@dataclass
class TrainingMetrics:
    """Accumulated records plus derived series and summary statistics."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series ---------------------------------------------------------------

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records])

    @property
    def wall_times(self) -> np.ndarray:
        return np.array([r.wall_time for r in self.records])

    @property
    def achieved_ratios(self) -> np.ndarray:
        return np.array([r.achieved_ratio for r in self.records])

    @property
    def iteration_times(self) -> np.ndarray:
        return np.array([r.iteration_time for r in self.records])

    def loss_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(iteration, loss) — Figure 4a/c."""
        return np.array([r.iteration for r in self.records]), self.losses

    def loss_vs_walltime(self) -> tuple[np.ndarray, np.ndarray]:
        """(simulated seconds, loss) — Figure 10."""
        return self.wall_times, self.losses

    def running_average_ratio(self, window: int = 20) -> np.ndarray:
        """Smoothed achieved compression ratio — Figure 9 traces."""
        if window < 1:
            raise ValueError("window must be >= 1")
        ratios = self.achieved_ratios
        if ratios.size == 0:
            return ratios
        kernel = np.ones(min(window, ratios.size)) / min(window, ratios.size)
        return np.convolve(ratios, kernel, mode="valid")

    # -- scalars ----------------------------------------------------------------

    @property
    def total_time(self) -> float:
        return float(self.records[-1].wall_time) if self.records else 0.0

    @property
    def final_loss(self) -> float:
        if not self.records:
            raise ValueError("no records")
        tail = self.losses[-max(1, len(self.records) // 10) :]
        return float(tail.mean())

    def average_throughput(self) -> float:
        """Samples per simulated second over the whole run."""
        if not self.records:
            return 0.0
        total_samples = sum(r.samples for r in self.records)
        total_time = self.total_time
        return total_samples / total_time if total_time > 0.0 else float("inf")

    def time_to_loss(self, target_loss: float) -> float | None:
        """First simulated wall time at which the smoothed loss reaches ``target_loss``.

        Returns ``None`` if the run never reaches the target (the paper's
        figures mark such runs with a speed-up of zero).
        """
        if not self.records:
            return None
        window = max(1, min(10, len(self.records) // 5))
        losses = self.losses
        kernel = np.ones(window) / window
        smoothed = np.convolve(losses, kernel, mode="valid")
        times = self.wall_times[window - 1 :]
        below = np.flatnonzero(smoothed <= target_loss)
        if below.size == 0:
            return None
        return float(times[below[0]])

    def estimation_quality(self) -> tuple[float, tuple[float, float]]:
        """Mean of ``achieved_ratio / target_ratio`` and its 90% confidence interval."""
        ratios = np.array([r.achieved_ratio / r.target_ratio for r in self.records if r.target_ratio > 0.0])
        if ratios.size == 0:
            return float("nan"), (float("nan"), float("nan"))
        mean = float(ratios.mean())
        if ratios.size < 2:
            return mean, (mean, mean)
        sem = float(ratios.std(ddof=1) / np.sqrt(ratios.size))
        half_width = 1.645 * sem
        return mean, (mean - half_width, mean + half_width)

    def component_breakdown(self) -> dict[str, float]:
        """Total simulated seconds spent in compute / compression / communication."""
        return {
            "compute": float(sum(r.compute_time for r in self.records)),
            "compression": float(sum(r.compression_time for r in self.records)),
            "communication": float(sum(r.communication_time for r in self.records)),
        }

    @property
    def serialized_total_time(self) -> float:
        """Total time the run would have taken with ``overlap="none"``."""
        return float(sum(r.serialized_time or r.iteration_time for r in self.records))

    def mean_dedup_ratio(self) -> float:
        """Average achieved sparse-dedup ratio over the compressed iterations.

        Iterations that shipped dense gradients (baseline, warm-up) carry a
        structural ratio of 1.0 and are excluded so the scalar reflects what
        the dedup model actually achieved on sparse traffic; a run with no
        compressed iterations reports 1.0.
        """
        ratios = [r.dedup_ratio for r in self.records if r.target_ratio < 1.0]
        if not ratios:
            return 1.0
        return float(np.mean(ratios))

    def overlap_summary(self) -> dict[str, float]:
        """Overlapped vs serialised run time and the fraction overlap saved."""
        overlapped = float(sum(r.iteration_time for r in self.records))
        serialized = self.serialized_total_time
        saving = 1.0 - overlapped / serialized if serialized > 0.0 else 0.0
        return {
            "overlapped_seconds": overlapped,
            "serialized_seconds": serialized,
            "overlap_saving": saving,
        }

    def straggler_summary(self) -> dict[str, float]:
        """Participation and cut statistics over the faulted iterations.

        ``mean_participants`` averages over iterations that carried a fault
        layer (records with ``participating_workers`` set); ``cut_iterations``
        counts iterations where the sync policy dropped at least one worker,
        and ``total_cut`` sums the drops.  A fault-free run reports zeros with
        ``faulted_iterations == 0``.
        """
        faulted = [r for r in self.records if r.participating_workers is not None]
        return {
            "faulted_iterations": float(len(faulted)),
            "mean_participants": (
                float(np.mean([r.participating_workers for r in faulted])) if faulted else 0.0
            ),
            "total_cut": float(sum(r.stragglers_cut for r in self.records)),
            "cut_iterations": float(sum(1 for r in self.records if r.stragglers_cut > 0)),
        }
