"""The consolidated simulation-knob bundle shared by every pricing surface.

Before this module, the ~14 scheduler/collective knobs (bucket size, overlap
policy, topology, collective algorithms, chunk pipelining, dedup assumption,
cross-bucket pipelining, scheduler backend, and now the fault/policy knobs)
were duplicated as flat fields and kwargs across ``TrainerConfig``,
``BenchmarkConfig``, ``run_benchmark``, ``compare_compressors`` and
``evaluate_point`` — five places whose defaults could silently drift apart,
and a sweep grid (``SWEEP_KNOBS``) that had to be updated by hand whenever a
knob was added.

:class:`SimulationKnobs` is now the single source of truth: the field order
*is* the sweep's canonical knob order (``repro.harness.sweep.SWEEP_KNOBS``
derives from :data:`KNOB_FIELDS`), the field defaults *are* the defaults of
every consuming config (``TrainerConfig`` and ``BenchmarkConfig`` read them at
class-definition time), and validation — including cross-knob consistency like
``backup_workers`` requiring the ``backup-workers`` policy — happens once, in
``__post_init__``.  A knob added here is automatically a sweepable axis, a
trainer field, and a benchmark field; it can no longer miss the grid.

Old flat kwargs on ``run_benchmark``/``compare_compressors`` keep working for
one release through :func:`apply_flat_overrides`, which folds them into a
knob bundle with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, fields, replace

from .faults import validate_sync_policy
from .schedule import validate_cross_bucket, validate_overlap, validate_scheduler_backend
from .topology import (
    SparseAggregateModel,
    get_collective_algorithm,
    get_topology,
    validate_pipeline_chunks,
)


@dataclass(frozen=True)
class SimulationKnobs:
    """Every knob that shapes how one training iteration is priced.

    Field order is load-bearing: it is the canonical knob order of the sweep
    grid (old knobs first, in their PR-9 order, new fault/policy knobs
    appended), so adding a field here extends the grid without re-keying any
    existing sweep point.
    """

    #: Bytes per gradient bucket (``None`` = one fused buffer, no bucketing).
    bucket_bytes: int | None = None
    #: Overlap policy of the event-driven schedule (see ``schedule.py``).
    overlap: str = "none"
    #: Cluster topology: preset name, explicit ``ClusterTopology``, or ``None``
    #: for the degenerate single-level topology over the caller's network.
    topology: object = None
    #: Collective algorithm pricing the dense baseline all-reduce.
    allreduce_algorithm: str = "ring-allreduce"
    #: Collective algorithm pricing the sparse all-gather.
    allgather_algorithm: str = "flat-allgather"
    #: Payload chunks hierarchical collective phases pipeline over.
    pipeline_chunks: int = 1
    #: Index-overlap assumption for per-node sparse dedup, or ``None``.
    dedup_assumption: str | None = None
    #: Schedule buckets on per-link network lanes (cross-bucket pipelining).
    cross_bucket_pipeline: bool = False
    #: Scheduler implementation: ``"loop"`` or ``"vectorized"``.
    scheduler_backend: str = "loop"
    #: Synchronization policy under faults: ``"full-sync"``,
    #: ``"backup-workers"`` or ``"time-window"`` (see ``faults.py``).
    sync_policy: str = "full-sync"
    #: Slowest workers the ``backup-workers`` policy cuts per iteration.
    backup_workers: int = 0
    #: ``time-window`` accumulation window as a multiple of the fastest
    #: worker's finish time (``None`` = the policy default when selected).
    time_window_factor: float | None = None
    #: Deterministic compute slowdown (>= 1) of the designated straggler
    #: (worker 0); 1.0 = homogeneous cluster.
    straggler_severity: float = 1.0
    #: Deterministic link-time multiplier (>= 1) of the designated straggler
    #: (worker 0); 1.0 = clean links.
    link_degradation: float = 1.0

    def __post_init__(self) -> None:
        if self.bucket_bytes is not None and self.bucket_bytes < 1:
            raise ValueError("bucket_bytes must be positive when set")
        validate_overlap(self.overlap)
        if isinstance(self.topology, str):
            get_topology(self.topology)  # fail fast on unknown preset names
        get_collective_algorithm(self.allreduce_algorithm, op="allreduce")
        get_collective_algorithm(self.allgather_algorithm, op="allgather")
        validate_pipeline_chunks(self.pipeline_chunks)
        if self.dedup_assumption is not None:
            SparseAggregateModel(self.dedup_assumption)  # fail fast on unknown assumptions
        validate_cross_bucket(self.cross_bucket_pipeline)
        validate_scheduler_backend(self.scheduler_backend)
        validate_sync_policy(self.sync_policy)
        if self.backup_workers < 0:
            raise ValueError(f"backup_workers must be >= 0, got {self.backup_workers}")
        if self.backup_workers > 0 and self.sync_policy != "backup-workers":
            raise ValueError(
                "backup_workers > 0 requires sync_policy='backup-workers', "
                f"got {self.sync_policy!r}"
            )
        if self.time_window_factor is not None:
            if not math.isfinite(self.time_window_factor) or self.time_window_factor < 1.0:
                raise ValueError(
                    f"time_window_factor must be >= 1, got {self.time_window_factor!r}"
                )
            if self.sync_policy != "time-window":
                raise ValueError(
                    "time_window_factor requires sync_policy='time-window', "
                    f"got {self.sync_policy!r}"
                )
        for name in ("straggler_severity", "link_degradation"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 1.0:
                raise ValueError(f"{name} must be a finite multiplier >= 1, got {value!r}")

    @property
    def faulted(self) -> bool:
        """True when any fault/policy knob departs from the clean-cluster default."""
        return (
            self.sync_policy != "full-sync"
            or self.backup_workers != 0
            or self.time_window_factor is not None
            or self.straggler_severity != 1.0
            or self.link_degradation != 1.0
        )

    def replace(self, **overrides) -> "SimulationKnobs":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        """Field name -> value, in canonical knob order."""
        return {name: getattr(self, name) for name in KNOB_FIELDS}


#: Canonical knob order — the single source the sweep grid derives from.
KNOB_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(SimulationKnobs))


def knob_defaults() -> dict:
    """Field name -> default, in canonical knob order.

    This is *the* default table: ``TrainerConfig`` and ``BenchmarkConfig``
    read it at class-definition time, so a default changed here changes
    everywhere at once and cannot drift.
    """
    return {f.name: f.default for f in fields(SimulationKnobs)}


def apply_flat_overrides(base: SimulationKnobs, overrides: dict, caller: str) -> SimulationKnobs:
    """Deprecation shim: fold legacy flat knob kwargs into a knob bundle.

    ``overrides`` maps knob names to values where ``None`` means "not passed"
    (the legacy kwargs' sentinel); any knob actually passed emits a
    :class:`DeprecationWarning` naming ``caller`` and wins over ``base``.
    Kept for one release so existing call sites migrate at their own pace.
    """
    passed = {name: value for name, value in overrides.items() if value is not None}
    unknown = set(passed) - set(KNOB_FIELDS)
    if unknown:
        raise ValueError(f"unknown knobs {sorted(unknown)}; known: {list(KNOB_FIELDS)}")
    if not passed:
        return base
    warnings.warn(
        f"passing flat knob kwargs ({sorted(passed)}) to {caller} is deprecated; "
        "pass knobs=SimulationKnobs(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return base.replace(**passed)
