"""Goodness-of-fit utilities for comparing SID fits against empirical gradients.

Figures 2 and 8 of the paper overlay the empirical PDF/CDF of captured
gradient vectors with the three fitted SIDs, with an inset zooming on the tail
of the CDF.  This module produces the numeric series behind those plots plus
scalar summary statistics (Kolmogorov-Smirnov distance and a tail-quantile
relative error) so the reproduction can assert fit quality without rendering
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmpiricalDensity:
    """Histogram-based empirical PDF over bin centers."""

    centers: np.ndarray
    density: np.ndarray


@dataclass(frozen=True)
class FitQuality:
    """Scalar summary of how well a fitted distribution matches a sample."""

    ks_statistic: float
    tail_quantile_rel_error: float
    log_likelihood: float


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, F(sorted_values))`` for the empirical CDF."""
    arr = np.sort(np.asarray(values, dtype=np.float64).ravel())
    if arr.size == 0:
        raise ValueError("empirical_cdf requires a non-empty sample")
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs


def empirical_pdf(values: np.ndarray, bins: int = 200) -> EmpiricalDensity:
    """Histogram-density estimate of the sample PDF (Figure 2a/2c style)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("empirical_pdf requires a non-empty sample")
    density, edges = np.histogram(arr, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return EmpiricalDensity(centers=centers, density=density)


def ks_statistic(values: np.ndarray, cdf_callable) -> float:
    """Kolmogorov-Smirnov distance between the sample and a model CDF."""
    xs, emp = empirical_cdf(values)
    model = np.asarray(cdf_callable(xs), dtype=np.float64)
    # Compare against both the left- and right-continuous empirical steps.
    lower = emp - 1.0 / xs.size
    return float(np.max(np.maximum(np.abs(emp - model), np.abs(lower - model))))


def tail_quantile_relative_error(values: np.ndarray, ppf_callable, quantile: float = 0.999) -> float:
    """Relative error of the model quantile vs the sample quantile at ``quantile``.

    This is the statistic that actually matters for threshold estimation: a
    fit can match the bulk of the distribution and still misplace the far
    tail, which is the failure mode single-stage fitting exhibits at
    aggressive ratios (Section 2.3, "Possible issues in far tail fitting").
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("tail_quantile_relative_error requires a non-empty sample")
    empirical_q = float(np.quantile(arr, quantile))
    model_q = float(ppf_callable(quantile))
    if empirical_q == 0.0:
        return abs(model_q)
    return abs(model_q - empirical_q) / abs(empirical_q)


def log_likelihood(values: np.ndarray, pdf_callable, *, floor: float = 1e-300) -> float:
    """Total log-likelihood of the sample under a model PDF."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    dens = np.asarray(pdf_callable(arr), dtype=np.float64)
    return float(np.sum(np.log(np.maximum(dens, floor))))


def evaluate_fit(values: np.ndarray, distribution, *, tail_quantile: float = 0.999) -> FitQuality:
    """Bundle KS distance, tail-quantile error, and log-likelihood for one fit."""
    return FitQuality(
        ks_statistic=ks_statistic(values, distribution.cdf),
        tail_quantile_rel_error=tail_quantile_relative_error(values, distribution.ppf, tail_quantile),
        log_likelihood=log_likelihood(values, distribution.pdf),
    )
