"""Gradient compressibility diagnostics (Definition 1, Property 1, Figure 7).

A vector ``g`` is compressible when its sorted magnitudes obey a power-law
decay ``|g|_(j) <= c * j^{-p}`` with ``p > 1/2``, which bounds the Top-k
sparsification error by ``c2 * k^{1/2 - p}``.  These diagnostics are used to
empirically validate Property 1 on captured gradients and regenerate the two
panels of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CompressibilityReport:
    """Summary of a power-law compressibility check on one gradient vector."""

    decay_exponent: float
    decay_constant: float
    r_squared: float
    is_compressible: bool
    dimension: int


def sorted_magnitudes(gradient: np.ndarray) -> np.ndarray:
    """Absolute values of ``gradient`` sorted in descending order (the vector ``~g``)."""
    return np.sort(np.abs(np.asarray(gradient, dtype=np.float64).ravel()))[::-1]


def sparsification_error(gradient: np.ndarray, k: int) -> float:
    """Best-k sparsification error ``sigma_k(g) = ||g - T_k{g}||_2`` (Eq. 2)."""
    g = np.asarray(gradient, dtype=np.float64).ravel()
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k >= g.size:
        return 0.0
    mags = np.sort(np.abs(g))  # ascending: first d-k entries are the dropped tail
    tail = mags[: g.size - k]
    return float(np.sqrt(np.sum(tail * tail)))


def sparsification_error_curve(gradient: np.ndarray, ks: np.ndarray | list[int]) -> np.ndarray:
    """Vector of ``sigma_k`` values for each ``k`` in ``ks`` (Figure 7b series)."""
    g = np.asarray(gradient, dtype=np.float64).ravel()
    mags_sq = np.sort(np.abs(g)) ** 2
    # cumulative sum of squared magnitudes from the smallest element upwards so
    # sigma_k is a single lookup per k.
    cum = np.concatenate(([0.0], np.cumsum(mags_sq)))
    ks_arr = np.asarray(ks, dtype=np.int64)
    if np.any(ks_arr < 0):
        raise ValueError("all k values must be non-negative")
    keep = np.clip(g.size - ks_arr, 0, g.size)
    return np.sqrt(cum[keep])


def fit_power_law_decay(
    gradient: np.ndarray,
    *,
    head_fraction: float = 0.4,
    min_points: int = 16,
) -> CompressibilityReport:
    """Fit ``log |g|_(j) ~ log c - p log j`` over the head of the sorted magnitudes.

    Only the head (largest ``head_fraction`` of non-zero entries) is used: the
    paper's Figure 7a focuses on the first ~1e5 of 2.7e5 indices because the
    far tail of near-zero values is noise-dominated and irrelevant to the
    decay-rate question.
    """
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError(f"head_fraction must be in (0, 1], got {head_fraction}")
    mags = sorted_magnitudes(gradient)
    nonzero = mags[mags > 0.0]
    if nonzero.size < min_points:
        raise ValueError(
            f"need at least {min_points} non-zero elements to fit a decay law, got {nonzero.size}"
        )
    n_head = max(min_points, int(np.ceil(nonzero.size * head_fraction)))
    head = nonzero[:n_head]
    j = np.arange(1, head.size + 1, dtype=np.float64)
    log_j = np.log(j)
    log_g = np.log(head)
    slope, intercept = np.polyfit(log_j, log_g, 1)
    predicted = slope * log_j + intercept
    ss_res = float(np.sum((log_g - predicted) ** 2))
    ss_tot = float(np.sum((log_g - log_g.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    decay_exponent = float(-slope)
    return CompressibilityReport(
        decay_exponent=decay_exponent,
        decay_constant=float(np.exp(intercept)),
        r_squared=r_squared,
        is_compressible=decay_exponent > 0.5,
        dimension=int(np.asarray(gradient).size),
    )


def power_law_envelope(dimension: int, constant: float, exponent: float) -> np.ndarray:
    """Reference envelope ``c * j^{-p}`` for plotting against sorted magnitudes."""
    j = np.arange(1, dimension + 1, dtype=np.float64)
    return constant * np.power(j, -exponent)
