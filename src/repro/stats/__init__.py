"""Statistics substrate: sparsity-inducing distributions, fitting, and diagnostics."""

from .compressibility import (
    CompressibilityReport,
    fit_power_law_decay,
    power_law_envelope,
    sorted_magnitudes,
    sparsification_error,
    sparsification_error_curve,
)
from .distributions import (
    ABSOLUTE_SIDS,
    SYMMETRIC_SIDS,
    DoubleGamma,
    DoubleGeneralizedPareto,
    Exponential,
    Gamma,
    GeneralizedPareto,
    Laplace,
)
from .fitting import (
    VALID_SIDS,
    FitResult,
    estimate_threshold,
    fit_absolute,
    threshold_from_fit,
    validate_sid,
)
from .goodness import (
    EmpiricalDensity,
    FitQuality,
    empirical_cdf,
    empirical_pdf,
    evaluate_fit,
    ks_statistic,
    log_likelihood,
    tail_quantile_relative_error,
)

__all__ = [
    "ABSOLUTE_SIDS",
    "SYMMETRIC_SIDS",
    "VALID_SIDS",
    "CompressibilityReport",
    "DoubleGamma",
    "DoubleGeneralizedPareto",
    "EmpiricalDensity",
    "Exponential",
    "FitQuality",
    "FitResult",
    "Gamma",
    "GeneralizedPareto",
    "Laplace",
    "empirical_cdf",
    "empirical_pdf",
    "estimate_threshold",
    "evaluate_fit",
    "fit_absolute",
    "fit_power_law_decay",
    "ks_statistic",
    "log_likelihood",
    "power_law_envelope",
    "sorted_magnitudes",
    "sparsification_error",
    "sparsification_error_curve",
    "tail_quantile_relative_error",
    "threshold_from_fit",
    "validate_sid",
]
