"""Sparsity-inducing distributions (SIDs) used to model DNN gradients.

The paper (Property 2) models the per-element gradient as a symmetric,
zero-located random variable following one of three SIDs:

* double exponential (Laplace),
* double gamma,
* double generalized Pareto (GP).

Threshold estimation only ever needs the distribution of the *absolute*
gradient (Lemma 1), so each symmetric distribution exposes its one-sided
counterpart (`Exponential`, `Gamma`, `GeneralizedPareto`).  All fitting uses
the closed-form estimators from Corollaries 1.1-1.3 so the cost of a fit is a
handful of vectorised reductions over the gradient vector — the property that
makes SIDCo cheaper than Top-k / DGC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from . import special


def _validate_probability(p: float) -> None:
    if not 0.0 < p < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {p}")


def _as_positive_array(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.ravel()
    return arr


# ---------------------------------------------------------------------------
# One-sided distributions (model |G|)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution with scale ``beta`` (mean ``beta``)."""

    scale: float
    name: ClassVar[str] = "exponential"

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = np.where(x >= 0.0, np.exp(-x / self.scale) / self.scale, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = np.where(x >= 0.0, 1.0 - np.exp(-x / self.scale), 0.0)
        return out if out.ndim else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        return float(-self.scale * np.log1p(-p))

    def mean(self) -> float:
        return self.scale

    def var(self) -> float:
        return self.scale**2

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(self.scale, size=size)

    @classmethod
    def fit(cls, abs_values: np.ndarray) -> "Exponential":
        """MLE fit: the scale is the sample mean of the absolute values."""
        arr = _as_positive_array(abs_values)
        mean = float(arr.mean()) if arr.size else 0.0
        if mean <= 0.0:
            raise ValueError("cannot fit an exponential to an all-zero or empty sample")
        return cls(scale=mean)

    def threshold_for_ratio(self, delta: float) -> float:
        """Threshold keeping an expected fraction ``delta`` of elements (Cor. 1.1)."""
        _validate_probability(delta)
        return float(self.scale * np.log(1.0 / delta))


@dataclass(frozen=True)
class Gamma:
    """Gamma distribution with shape ``shape`` and scale ``scale``."""

    shape: float
    scale: float
    name: ClassVar[str] = "gamma"

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale <= 0.0:
            raise ValueError("shape and scale must be positive")

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_pdf = (
                (self.shape - 1.0) * np.log(x)
                - x / self.scale
                - self.shape * np.log(self.scale)
                - special.log_gamma(self.shape)
            )
            out = np.where(x > 0.0, np.exp(log_pdf), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = np.where(x > 0.0, special.reg_lower_incomplete_gamma(self.shape, np.maximum(x, 0.0) / self.scale), 0.0)
        return out if out.ndim else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        return float(self.scale * special.inv_reg_lower_incomplete_gamma(self.shape, p))

    def mean(self) -> float:
        return self.shape * self.scale

    def var(self) -> float:
        return self.shape * self.scale**2

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=size)

    @classmethod
    def fit(cls, abs_values: np.ndarray, *, exact_mle: bool = False) -> "Gamma":
        """Closed-form (Minka) fit per Corollary 1.2, or exact MLE if requested."""
        arr = _as_positive_array(abs_values)
        positive = arr[arr > 0.0]
        if positive.size == 0:
            raise ValueError("cannot fit a gamma to an all-zero or empty sample")
        mean = float(positive.mean())
        mean_log = float(np.log(positive).mean())
        if exact_mle:
            shape = special.gamma_shape_mle(mean, mean_log)
        else:
            shape = special.minka_gamma_shape(np.log(mean) - mean_log)
        shape = float(np.clip(shape, 1e-6, 1e6))
        return cls(shape=shape, scale=mean / shape)

    def threshold_for_ratio(self, delta: float, *, approximate: bool = True) -> float:
        """Threshold for target ratio ``delta`` (Cor. 1.2).

        With ``approximate=True`` uses the closed form
        ``-beta (log delta + log Γ(alpha))`` the paper adopts on the hot path;
        otherwise the exact quantile via the inverse incomplete gamma.
        """
        _validate_probability(delta)
        if approximate:
            eta = special.gamma_quantile_upper_tail_approx(self.shape, self.scale, delta)
            return float(max(eta, 0.0))
        return special.gamma_quantile_exact(self.shape, self.scale, delta)


@dataclass(frozen=True)
class GeneralizedPareto:
    """Generalized Pareto distribution GP(shape, scale, loc).

    The paper constrains the shape to ``|alpha| < 1/2`` so the first two
    moments exist and moment matching is valid (Eq. 34-35).  ``shape`` close
    to zero degrades gracefully to the exponential distribution.
    """

    shape: float
    scale: float
    loc: float = 0.0
    name: ClassVar[str] = "generalized_pareto"

    _SHAPE_EPS: ClassVar[float] = 1e-8

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def _z(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=np.float64) - self.loc) / self.scale

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        z = self._z(x)
        if abs(self.shape) < self._SHAPE_EPS:
            out = np.where(z >= 0.0, np.exp(-z) / self.scale, 0.0)
        else:
            base = 1.0 + self.shape * z
            with np.errstate(invalid="ignore"):
                out = np.where(
                    (z >= 0.0) & (base > 0.0),
                    np.power(np.maximum(base, 1e-12), -(1.0 / self.shape + 1.0)) / self.scale,
                    0.0,
                )
        return out if out.ndim else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        z = self._z(x)
        if abs(self.shape) < self._SHAPE_EPS:
            out = np.where(z >= 0.0, 1.0 - np.exp(-z), 0.0)
        else:
            base = 1.0 + self.shape * z
            with np.errstate(invalid="ignore"):
                inner = np.power(np.maximum(base, 1e-12), -1.0 / self.shape)
                out = np.where(z >= 0.0, np.where(base > 0.0, 1.0 - inner, 1.0), 0.0)
        return out if out.ndim else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        if abs(self.shape) < self._SHAPE_EPS:
            return float(self.loc - self.scale * np.log1p(-p))
        return float(self.loc + self.scale / self.shape * (np.exp(-self.shape * np.log1p(-p)) - 1.0))

    def mean(self) -> float:
        if self.shape >= 1.0:
            return float("inf")
        return self.loc + self.scale / (1.0 - self.shape)

    def var(self) -> float:
        if self.shape >= 0.5:
            return float("inf")
        return self.scale**2 / ((1.0 - self.shape) ** 2 * (1.0 - 2.0 * self.shape))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=size)
        if abs(self.shape) < self._SHAPE_EPS:
            return self.loc - self.scale * np.log1p(-u)
        return self.loc + self.scale / self.shape * (np.power(1.0 - u, -self.shape) - 1.0)

    @classmethod
    def fit(cls, abs_values: np.ndarray, *, loc: float = 0.0) -> "GeneralizedPareto":
        """Moment-matching fit per Corollary 1.3 / Lemma 2 (Eq. 29, 38).

        Matches the paper's sign convention where ``alpha = (1 - mu^2/sigma^2)/2``;
        ``abs_values`` are the exceedances already shifted so that ``loc`` is
        their lower bound (the previous-stage threshold, or 0 for stage one).
        """
        arr = _as_positive_array(abs_values)
        shifted = arr - loc
        shifted = shifted[shifted >= 0.0]
        if shifted.size < 2:
            raise ValueError("need at least two exceedances to moment-match a GP distribution")
        mu = float(shifted.mean())
        sigma2 = float(shifted.var())
        if mu <= 0.0 or sigma2 <= 0.0:
            raise ValueError("degenerate exceedance sample for GP fitting")
        shape = 0.5 * (1.0 - mu * mu / sigma2)
        scale = 0.5 * mu * (mu * mu / sigma2 + 1.0)
        # Keep the shape in the range where moments exist, as the paper assumes.
        shape = float(np.clip(shape, -0.499, 0.499))
        scale = float(max(scale, 1e-300))
        return cls(shape=shape, scale=scale, loc=loc)

    def threshold_for_ratio(self, delta: float) -> float:
        """Threshold for target ratio ``delta`` relative to the location (Eq. 28 / 7)."""
        _validate_probability(delta)
        if abs(self.shape) < self._SHAPE_EPS:
            return float(self.loc + self.scale * np.log(1.0 / delta))
        return float(self.loc + self.scale / self.shape * (np.exp(-self.shape * np.log(delta)) - 1.0))


# ---------------------------------------------------------------------------
# Symmetric ("double") distributions (model G)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Laplace:
    """Double-exponential (Laplace) distribution centred at zero."""

    scale: float
    name: ClassVar[str] = "laplace"

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def absolute(self) -> Exponential:
        return Exponential(scale=self.scale)

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = np.exp(-np.abs(x) / self.scale) / (2.0 * self.scale)
        return out if out.ndim else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        half_tail = 0.5 * np.exp(-np.abs(x) / self.scale)
        out = np.where(x < 0.0, half_tail, 1.0 - half_tail)
        return out if out.ndim else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        if p < 0.5:
            return float(self.scale * np.log(2.0 * p))
        return float(-self.scale * np.log(2.0 * (1.0 - p)))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.laplace(0.0, self.scale, size=size)

    @classmethod
    def fit(cls, values: np.ndarray) -> "Laplace":
        arr = np.abs(_as_positive_array(values))
        mean = float(arr.mean()) if arr.size else 0.0
        if mean <= 0.0:
            raise ValueError("cannot fit a Laplace to an all-zero or empty sample")
        return cls(scale=mean)


@dataclass(frozen=True)
class DoubleGamma:
    """Symmetric gamma distribution (Eq. 17), used when gradients decay faster than Laplace."""

    shape: float
    scale: float
    name: ClassVar[str] = "double_gamma"

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale <= 0.0:
            raise ValueError("shape and scale must be positive")

    @property
    def absolute(self) -> Gamma:
        return Gamma(shape=self.shape, scale=self.scale)

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = 0.5 * self.absolute.pdf(np.abs(x))
        return out if np.ndim(out) else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        half = self.absolute.cdf(np.abs(x))
        out = np.where(x < 0.0, 0.5 * (1.0 - half), 0.5 * (1.0 + half))
        return out if np.ndim(out) else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        if p == 0.5:
            return 0.0
        if p > 0.5:
            return self.absolute.ppf(2.0 * p - 1.0)
        return -self.absolute.ppf(1.0 - 2.0 * p)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        magnitude = self.absolute.sample(size, rng)
        signs = rng.choice(np.array([-1.0, 1.0]), size=size)
        return magnitude * signs

    @classmethod
    def fit(cls, values: np.ndarray, **kwargs) -> "DoubleGamma":
        fitted = Gamma.fit(np.abs(np.asarray(values, dtype=np.float64)).ravel(), **kwargs)
        return cls(shape=fitted.shape, scale=fitted.scale)


@dataclass(frozen=True)
class DoubleGeneralizedPareto:
    """Symmetric generalized Pareto distribution (Eq. 30)."""

    shape: float
    scale: float
    name: ClassVar[str] = "double_generalized_pareto"

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def absolute(self) -> GeneralizedPareto:
        return GeneralizedPareto(shape=self.shape, scale=self.scale, loc=0.0)

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = 0.5 * self.absolute.pdf(np.abs(x))
        return out if np.ndim(out) else float(out)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        half = self.absolute.cdf(np.abs(x))
        out = np.where(x < 0.0, 0.5 * (1.0 - half), 0.5 * (1.0 + half))
        return out if np.ndim(out) else float(out)

    def ppf(self, p: float) -> float:
        _validate_probability(p)
        if p == 0.5:
            return 0.0
        if p > 0.5:
            return self.absolute.ppf(2.0 * p - 1.0)
        return -self.absolute.ppf(1.0 - 2.0 * p)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        magnitude = self.absolute.sample(size, rng)
        signs = rng.choice(np.array([-1.0, 1.0]), size=size)
        return magnitude * signs

    @classmethod
    def fit(cls, values: np.ndarray) -> "DoubleGeneralizedPareto":
        fitted = GeneralizedPareto.fit(np.abs(np.asarray(values, dtype=np.float64)).ravel(), loc=0.0)
        return cls(shape=fitted.shape, scale=fitted.scale)


SYMMETRIC_SIDS = {
    "exponential": Laplace,
    "gamma": DoubleGamma,
    "gpareto": DoubleGeneralizedPareto,
}

ABSOLUTE_SIDS = {
    "exponential": Exponential,
    "gamma": Gamma,
    "gpareto": GeneralizedPareto,
}
