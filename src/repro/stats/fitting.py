"""Closed-form SID fitters operating directly on gradient vectors.

These are the functions SIDCo calls on every training iteration, so they are
written as a handful of vectorised NumPy reductions (means, variances, log
means) exactly mirroring ``Thresh_Estimation`` in Algorithm 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .distributions import Exponential, Gamma, GeneralizedPareto

SIDName = Literal["exponential", "gamma", "gpareto"]

VALID_SIDS: tuple[str, ...] = ("exponential", "gamma", "gpareto")


@dataclass(frozen=True)
class FitResult:
    """A fitted one-sided SID plus the sample statistics it was derived from."""

    distribution: Exponential | Gamma | GeneralizedPareto
    sid: str
    sample_size: int
    sample_mean: float
    sample_var: float

    @property
    def params(self) -> dict[str, float]:
        dist = self.distribution
        if isinstance(dist, Exponential):
            return {"scale": dist.scale}
        if isinstance(dist, Gamma):
            return {"shape": dist.shape, "scale": dist.scale}
        return {"shape": dist.shape, "scale": dist.scale, "loc": dist.loc}


def validate_sid(sid: str) -> str:
    if sid not in VALID_SIDS:
        raise ValueError(f"unknown SID {sid!r}; expected one of {VALID_SIDS}")
    return sid


def fit_absolute(abs_values: np.ndarray, sid: SIDName, *, loc: float = 0.0) -> FitResult:
    """Fit the one-sided SID ``sid`` to a vector of absolute gradient values.

    ``loc`` is the lower bound of the sample (the previous-stage threshold for
    multi-stage / peak-over-threshold fitting, 0.0 for the first stage).  The
    exponential and gamma fits subtract ``loc`` before fitting, matching
    Corollary 2.1 and Algorithm 1; the GP fit uses ``loc`` as its location
    parameter per Lemma 2.
    """
    validate_sid(sid)
    arr = np.asarray(abs_values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot fit a distribution to an empty sample")

    if sid == "exponential":
        shifted = arr - loc
        dist: Exponential | Gamma | GeneralizedPareto = Exponential.fit(shifted)
        mean = float(shifted.mean())
        var = float(shifted.var())
    elif sid == "gamma":
        shifted = arr - loc
        dist = Gamma.fit(shifted)
        mean = float(shifted.mean())
        var = float(shifted.var())
    else:  # gpareto
        dist = GeneralizedPareto.fit(arr, loc=loc)
        shifted = arr - loc
        mean = float(shifted.mean())
        var = float(shifted.var())

    return FitResult(
        distribution=dist,
        sid=sid,
        sample_size=int(arr.size),
        sample_mean=mean,
        sample_var=var,
    )


def threshold_from_fit(fit: FitResult, delta: float, *, loc: float = 0.0) -> float:
    """Threshold (in the original, unshifted gradient-magnitude space) for ratio ``delta``.

    For the exponential and gamma fits the fitted distribution lives in the
    shifted space (values minus ``loc``), so the previous-stage threshold is
    added back; the GP fit already carries the location.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    dist = fit.distribution
    if isinstance(dist, GeneralizedPareto):
        return float(dist.threshold_for_ratio(delta))
    return float(dist.threshold_for_ratio(delta) + loc)


def estimate_threshold(
    abs_values: np.ndarray,
    delta: float,
    sid: SIDName,
    *,
    loc: float = 0.0,
) -> float:
    """One-shot fit + quantile: the ``Thresh_Estimation`` routine of Algorithm 1."""
    fit = fit_absolute(abs_values, sid, loc=loc)
    return threshold_from_fit(fit, delta, loc=loc)
