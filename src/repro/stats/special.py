"""Special-function helpers used by the SID fitters.

The paper's closed-form estimators (Corollary 1.1-1.3, Lemma 2) only need a
small set of special functions: the log-gamma function, the digamma function
(for the exact gamma MLE we validate against), and the regularized lower
incomplete gamma function together with its inverse (for the exact gamma
quantile).  SciPy provides production implementations of all of them; this
module gives them stable, documented names and adds the closed-form
approximations from the paper so both exact and approximate paths are
available and testable against each other.
"""

from __future__ import annotations

import numpy as np
from scipy import special as _sp


def log_gamma(x: np.ndarray | float) -> np.ndarray | float:
    """Natural log of the gamma function, ``log Γ(x)``."""
    return _sp.gammaln(x)


def digamma(x: np.ndarray | float) -> np.ndarray | float:
    """Digamma function ``ψ(x) = d log Γ(x) / dx``."""
    return _sp.digamma(x)


def reg_lower_incomplete_gamma(a: float, x: np.ndarray | float) -> np.ndarray | float:
    """Regularized lower incomplete gamma function ``P(a, x)``."""
    return _sp.gammainc(a, x)


def inv_reg_lower_incomplete_gamma(a: float, p: np.ndarray | float) -> np.ndarray | float:
    """Inverse of ``P(a, x)`` in ``x`` for probability ``p``."""
    return _sp.gammaincinv(a, p)


def gamma_quantile_upper_tail_approx(alpha: float, beta: float, delta: float) -> float:
    """Closed-form approximation of the gamma ``1 - delta`` quantile.

    Implements Eq. (15) / (24) of the paper:

        eta ≈ -beta * (log(delta) + log Γ(alpha))

    which upper-bounds the exact quantile for ``alpha <= 1`` and ``x >= 1`` and
    is tight as ``alpha -> 1``.  It avoids the inverse incomplete gamma
    function on the hot path.
    """
    if delta <= 0.0 or delta >= 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if beta <= 0.0:
        raise ValueError(f"beta must be positive, got {beta}")
    return float(-beta * (np.log(delta) + log_gamma(alpha)))


def gamma_quantile_exact(alpha: float, beta: float, delta: float) -> float:
    """Exact gamma ``1 - delta`` quantile via the inverse incomplete gamma.

    Implements Eq. (14): ``eta = beta * P^{-1}(alpha, 1 - delta)``.
    """
    if delta <= 0.0 or delta >= 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if beta <= 0.0 or alpha <= 0.0:
        raise ValueError("alpha and beta must be positive")
    return float(beta * inv_reg_lower_incomplete_gamma(alpha, 1.0 - delta))


def minka_gamma_shape(log_mean_minus_mean_log: float) -> float:
    """Minka's closed-form approximation of the gamma shape parameter.

    Given ``s = log(mean(x)) - mean(log(x))`` this returns Eq. (16)/(27):

        alpha ≈ (3 - s + sqrt((s - 3)^2 + 24 s)) / (12 s)
    """
    s = float(log_mean_minus_mean_log)
    if s <= 0.0:
        # s -> 0 corresponds to a degenerate (constant) sample; the shape
        # estimate diverges.  Cap it at a large-but-finite value so callers
        # degrade gracefully instead of dividing by zero.
        return 1e6
    return (3.0 - s + np.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)


def gamma_shape_mle(mean: float, mean_log: float, *, tol: float = 1e-10, max_iter: int = 100) -> float:
    """Numerical MLE of the gamma shape parameter.

    Solves ``log(alpha) - psi(alpha) = s`` with ``s = log(mean) - mean_log``
    using Newton iterations started from Minka's closed form.  Used in tests
    and ablations to quantify the error of the closed-form path the paper
    adopts for speed.
    """
    s = float(np.log(mean) - mean_log)
    if s <= 0.0:
        return 1e6
    alpha = minka_gamma_shape(s)
    for _ in range(max_iter):
        f = np.log(alpha) - digamma(alpha) - s
        fprime = 1.0 / alpha - _sp.polygamma(1, alpha)
        step = f / fprime
        new_alpha = alpha - step
        if new_alpha <= 0.0:
            new_alpha = alpha / 2.0
        if abs(new_alpha - alpha) < tol * alpha:
            alpha = new_alpha
            break
        alpha = new_alpha
    return float(alpha)
