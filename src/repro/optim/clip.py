"""Gradient clipping (used by the RNN training recipes)."""

from __future__ import annotations

import numpy as np


def clip_by_global_norm(gradients: dict[str, np.ndarray], max_norm: float) -> tuple[dict[str, np.ndarray], float]:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the (possibly rescaled) gradients and the pre-clip global norm.
    """
    if max_norm <= 0.0:
        raise ValueError("max_norm must be positive")
    total_sq = 0.0
    for grad in gradients.values():
        total_sq += float(np.sum(np.asarray(grad, dtype=np.float64) ** 2))
    norm = float(np.sqrt(total_sq))
    if norm <= max_norm or norm == 0.0:
        return gradients, norm
    scale = max_norm / norm
    return {name: np.asarray(grad, dtype=np.float64) * scale for name, grad in gradients.items()}, norm


def clip_flat_by_norm(gradient: np.ndarray, max_norm: float) -> tuple[np.ndarray, float]:
    """Clip a flattened gradient vector by its L2 norm."""
    if max_norm <= 0.0:
        raise ValueError("max_norm must be positive")
    grad = np.asarray(gradient, dtype=np.float64)
    norm = float(np.linalg.norm(grad))
    if norm <= max_norm or norm == 0.0:
        return grad, norm
    return grad * (max_norm / norm), norm
