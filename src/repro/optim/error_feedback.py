"""Error-feedback (EC) memory for compressed gradients.

With aggressive sparsification, the elements dropped by the compressor carry
information that would otherwise be lost; error feedback (Karimireddy et al.,
2019) stores the dropped residual locally and adds it back to the next
iteration's gradient before compression, which restores the convergence
guarantees (Eq. 43) and is enabled for every compressor in the paper's
evaluation.
"""

from __future__ import annotations

import numpy as np

from ..tensor.sparse import SparseGradient


class ErrorFeedback:
    """Per-worker residual memory for one flattened gradient buffer."""

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self._memory = np.zeros(dimension, dtype=np.float64)

    @property
    def memory(self) -> np.ndarray:
        """The residual currently stored (a copy, for inspection)."""
        return self._memory.copy()

    def reset(self) -> None:
        self._memory.fill(0.0)

    def correct(self, gradient: np.ndarray) -> np.ndarray:
        """Return ``gradient + residual`` — the vector that should be compressed."""
        grad = np.asarray(gradient, dtype=np.float64).ravel()
        if grad.size != self.dimension:
            raise ValueError(f"gradient has {grad.size} elements, expected {self.dimension}")
        return grad + self._memory

    def update(self, corrected_gradient: np.ndarray, transmitted: SparseGradient) -> None:
        """Store the part of ``corrected_gradient`` that was *not* transmitted."""
        corrected = np.asarray(corrected_gradient, dtype=np.float64).ravel()
        if corrected.size != self.dimension:
            raise ValueError(f"gradient has {corrected.size} elements, expected {self.dimension}")
        if transmitted.dense_size != self.dimension:
            raise ValueError("transmitted gradient dimension mismatch")
        residual = corrected.copy()
        residual[transmitted.indices] -= transmitted.values
        self._memory = residual

    def step(self, gradient: np.ndarray, compress) -> tuple[SparseGradient, np.ndarray]:
        """Convenience: correct, compress with ``compress(corrected)``, update memory.

        ``compress`` must return an object with a ``sparse`` attribute (a
        :class:`CompressionResult`) or a :class:`SparseGradient` directly.
        Returns ``(sparse, corrected)``.
        """
        corrected = self.correct(gradient)
        result = compress(corrected)
        sparse = result.sparse if hasattr(result, "sparse") else result
        self.update(corrected, sparse)
        return sparse, corrected
