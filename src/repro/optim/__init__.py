"""Optimisers, LR schedules, gradient clipping and error feedback."""

from .clip import clip_by_global_norm, clip_flat_by_norm
from .error_feedback import ErrorFeedback
from .lr_scheduler import ConstantLR, CosineAnnealing, LRScheduler, WarmupStepDecay
from .sgd import SGD

__all__ = [
    "SGD",
    "ConstantLR",
    "CosineAnnealing",
    "ErrorFeedback",
    "LRScheduler",
    "WarmupStepDecay",
    "clip_by_global_norm",
    "clip_flat_by_norm",
]
