"""Learning-rate schedules used by the Table 1 training recipes."""

from __future__ import annotations

import numpy as np

from .sgd import SGD


class LRScheduler:
    """Base scheduler: computes a learning rate per iteration and writes it to the optimiser."""

    def __init__(self, optimizer: SGD, base_lr: float | None = None) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.iteration = 0

    def lr_at(self, iteration: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one iteration and apply the new learning rate."""
        lr = self.lr_at(self.iteration)
        self.optimizer.lr = lr
        self.iteration += 1
        return lr


class ConstantLR(LRScheduler):
    """Keep the base learning rate unchanged."""

    def lr_at(self, iteration: int) -> float:
        return self.base_lr


class WarmupStepDecay(LRScheduler):
    """Linear warm-up followed by multiplicative step decay.

    The paper uses a 5-epoch warm-up for every benchmark and the standard
    step-decay recipes of the reference training schedules.
    """

    def __init__(
        self,
        optimizer: SGD,
        warmup_iterations: int,
        decay_every: int,
        decay_factor: float = 0.1,
        base_lr: float | None = None,
    ) -> None:
        super().__init__(optimizer, base_lr)
        if warmup_iterations < 0:
            raise ValueError("warmup_iterations must be non-negative")
        if decay_every <= 0:
            raise ValueError("decay_every must be positive")
        if not 0.0 < decay_factor <= 1.0:
            raise ValueError("decay_factor must be in (0, 1]")
        self.warmup_iterations = warmup_iterations
        self.decay_every = decay_every
        self.decay_factor = decay_factor

    def lr_at(self, iteration: int) -> float:
        if self.warmup_iterations and iteration < self.warmup_iterations:
            return self.base_lr * (iteration + 1) / self.warmup_iterations
        past_warmup = iteration - self.warmup_iterations
        num_decays = past_warmup // self.decay_every
        return self.base_lr * (self.decay_factor**num_decays)


class CosineAnnealing(LRScheduler):
    """Cosine decay from the base learning rate to ``min_lr`` over ``total_iterations``."""

    def __init__(self, optimizer: SGD, total_iterations: int, min_lr: float = 0.0, base_lr: float | None = None) -> None:
        super().__init__(optimizer, base_lr)
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        if min_lr < 0.0:
            raise ValueError("min_lr must be non-negative")
        self.total_iterations = total_iterations
        self.min_lr = min_lr

    def lr_at(self, iteration: int) -> float:
        progress = min(iteration / self.total_iterations, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))
