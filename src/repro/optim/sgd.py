"""SGD optimisers (vanilla, momentum, Nesterov momentum) over named gradients.

The distributed trainer aggregates a *flat* gradient across workers and hands
the optimiser a dict of named per-parameter gradients (the unflattened view).
Keeping the update decoupled from ``Parameter.grad`` is what lets every worker
apply the *aggregated* gradient rather than its local one, exactly like the
synchronous SGD of Appendix A / Algorithm 2.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module


class SGD:
    """Stochastic gradient descent with optional (Nesterov) momentum and weight decay.

    Parameters
    ----------
    model:
        The model whose parameters this optimiser updates.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables momentum).
    nesterov:
        Use the Nesterov look-ahead form (the paper's ImageNet / RNN recipes).
    weight_decay:
        L2 regularisation coefficient added to the gradient before the update.
    """

    def __init__(
        self,
        model: Module,
        lr: float = 0.1,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, gradients: dict[str, np.ndarray] | None = None) -> None:
        """Apply one update.

        ``gradients`` maps parameter names (as in ``model.named_parameters()``)
        to gradient arrays; when omitted, each parameter's own accumulated
        ``.grad`` is used (single-worker training).
        """
        params = self.model.named_parameters()
        if gradients is None:
            gradients = {name: p.grad for name, p in params.items()}
        for name, param in params.items():
            if name not in gradients:
                raise KeyError(f"missing gradient for parameter {name!r}")
            grad = np.asarray(gradients[name], dtype=np.float64)
            if grad.shape != param.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match parameter {name!r} shape {param.data.shape}"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[name] = velocity
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: v.copy() for name, v in self._velocity.items()}
