"""Proxy models mirroring the architecture families of Table 1.

These are intentionally narrow versions of the paper's benchmark models (the
simulator trains them in seconds on CPU) but they keep the structural features
that shape gradient statistics: deep conv stacks with a classifier head
(VGG-style), residual blocks (ResNet-style), and embedding + stacked LSTM +
projection (PTB / AN4-style).  The full-size parameter counts from Table 1 are
used separately by the performance model when converting to wall-clock time.
"""

from __future__ import annotations

import numpy as np

from .conv import Conv2d, GlobalAvgPool2d, MaxPool2d, ResidualBlock
from .layers import Dropout, Flatten, Linear, ReLU, Sequential
from .module import Module
from .rnn import LSTM, Embedding


class MLPClassifier(Module):
    """Small fully connected classifier (used for quick tests and examples)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...] = (64, 32),
        num_classes: int = 10,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        prev = input_dim
        for width in hidden_dims:
            layers.append(Linear(prev, width, rng=rng))
            layers.append(ReLU())
            prev = width
        layers.append(Linear(prev, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x.reshape(x.shape[0], -1))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)


class CNNClassifier(Module):
    """VGG-style stack: conv blocks with max pooling, then a dense head."""

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        channels: tuple[int, ...] = (16, 32),
        num_classes: int = 10,
        *,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        blocks: list[Module] = []
        prev = in_channels
        size = image_size
        for ch in channels:
            blocks.append(Conv2d(prev, ch, 3, 1, 1, rng=rng))
            blocks.append(ReLU())
            blocks.append(MaxPool2d(2))
            prev = ch
            size //= 2
        blocks.append(Flatten())
        if dropout > 0.0:
            blocks.append(Dropout(dropout, rng=rng))
        blocks.append(Linear(prev * size * size, num_classes, rng=rng))
        self.net = Sequential(*blocks)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)


class ResNetProxy(Module):
    """Residual CNN: stem conv, residual blocks, global average pooling, linear head."""

    def __init__(
        self,
        in_channels: int = 3,
        num_blocks: int = 2,
        width: int = 16,
        num_classes: int = 10,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, width, 3, 1, 1, rng=rng)
        self.stem_relu = ReLU()
        self.blocks = Sequential(*[ResidualBlock(width, rng=rng) for _ in range(num_blocks)])
        self.pool = GlobalAvgPool2d()
        self.head = Linear(width, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.stem_relu(self.stem(x))
        h = self.blocks(h)
        h = self.pool(h)
        return self.head(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.blocks.backward(grad)
        grad = self.stem_relu.backward(grad)
        return self.stem.backward(grad)


class LSTMLanguageModel(Module):
    """Embedding + stacked LSTM + tied-width projection to the vocabulary.

    The PTB proxy: predicts the next token at every position, evaluated with
    perplexity like the paper's 2x1500 LSTM.
    """

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int = 32,
        hidden_size: int = 64,
        num_layers: int = 2,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.lstm = LSTM(embedding_dim, hidden_size, num_layers, rng=rng)
        self.projection = Linear(hidden_size, vocab_size, rng=rng)
        self._hidden_shape: tuple[int, ...] | None = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        embedded = self.embedding(token_ids)
        hidden = self.lstm(embedded)
        self._hidden_shape = hidden.shape
        batch, time, width = hidden.shape
        logits = self.projection(hidden.reshape(batch * time, width))
        return logits.reshape(batch, time, -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._hidden_shape is None:
            raise RuntimeError("backward called before forward")
        batch, time, width = self._hidden_shape
        grad = self.projection.backward(grad_output.reshape(batch * time, -1))
        grad = self.lstm.backward(grad.reshape(batch, time, width))
        return self.embedding.backward(grad)


class LSTMSequenceClassifier(Module):
    """Stacked LSTM over feature frames with mean pooling and a classifier head.

    The AN4 proxy: consumes "acoustic" feature sequences and predicts an
    utterance label, standing in for the DeepSpeech-style model (the
    compressors only ever see its gradients).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_size: int = 48,
        num_layers: int = 2,
        num_classes: int = 10,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.lstm = LSTM(input_dim, hidden_size, num_layers, rng=rng)
        self.head = Linear(hidden_size, num_classes, rng=rng)
        self._time: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.lstm(x)
        self._time = hidden.shape[1]
        pooled = hidden.mean(axis=1)
        return self.head(pooled)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._time is None:
            raise RuntimeError("backward called before forward")
        grad_pooled = self.head.backward(grad_output)
        grad_hidden = np.repeat(grad_pooled[:, None, :], self._time, axis=1) / self._time
        return self.lstm.backward(grad_hidden)


def build_model(name: str, **kwargs) -> Module:
    """Construct a proxy model by short name.

    Known names: ``mlp``, ``cnn`` (VGG-style), ``resnet`` (residual proxy),
    ``lstm_lm`` (PTB proxy), ``lstm_seq`` (AN4 proxy).
    """
    registry = {
        "mlp": MLPClassifier,
        "cnn": CNNClassifier,
        "resnet": ResNetProxy,
        "lstm_lm": LSTMLanguageModel,
        "lstm_seq": LSTMSequenceClassifier,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown model {name!r}; known: {sorted(registry)}")
    return registry[key](**kwargs)
