"""Minimal module/parameter abstraction for the NumPy DNN substrate.

The distributed-training simulator needs real models producing real,
training-evolving gradients (Property 1/2 of the paper are statements about
those gradients), but none of the heavyweight framework machinery.  This
module provides the smallest useful contract:

* :class:`Parameter` — a named array with an accumulated gradient,
* :class:`Module` — forward/backward with explicit caches (no autograd tape),
  parameter registration, and named traversal compatible with the
  flatten/unflatten utilities in :mod:`repro.tensor`.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array and its accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses implement ``forward`` (storing whatever they need for the
    backward pass on ``self``) and ``backward`` (consuming the stored cache,
    accumulating parameter gradients, and returning the gradient with respect
    to the input).
    """

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- registration -------------------------------------------------------

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> dict[str, Parameter]:
        """All parameters of this module and its children, keyed by dotted path."""
        out: dict[str, Parameter] = {}
        for name, param in self._parameters.items():
            out[f"{prefix}{name}"] = param
        for name, module in self._modules.items():
            out.update(module.named_parameters(prefix=f"{prefix}{name}."))
        return out

    def parameters(self) -> list[Parameter]:
        return list(self.named_parameters().values())

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state round-trips (used by tests and checkpoint-free workers) -------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.named_parameters()
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    def gradient_dict(self) -> dict[str, np.ndarray]:
        """Current accumulated gradients keyed like ``named_parameters``."""
        return {name: param.grad.copy() for name, param in self.named_parameters().items()}

    # -- mode ----------------------------------------------------------------

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -- computation ----------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
