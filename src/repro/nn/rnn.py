"""Recurrent layers: embedding lookup and a multi-layer LSTM with BPTT.

The paper's two RNN benchmarks (LSTM language model on PTB, DeepSpeech-style
LSTM on AN4) are the workloads where compression matters most (94% and 80%
communication overhead in Table 1).  The proxies built on this layer keep the
same architecture family — embedding + stacked LSTM + projection — at reduced
width so the simulator can train them quickly while still producing
non-trivially distributed gradients.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class Embedding(Module):
    """Token-id to dense-vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)))
        self._input_ids: np.ndarray | None = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise ValueError("token id out of range for embedding table")
        self._input_ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_ids is None:
            raise RuntimeError("backward called before forward")
        flat_ids = self._input_ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        # Token ids are not differentiable; return zeros with the id shape for API symmetry.
        return np.zeros(self._input_ids.shape, dtype=np.float64)


class LSTM(Module):
    """Stacked LSTM over a ``(batch, time, features)`` input.

    Forward returns the top layer's hidden states for every timestep.
    Backward performs truncated BPTT over the full forward window (the
    simulator always uses windows short enough for exact BPTT).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            w_ih = Parameter(init.xavier_uniform((4 * hidden_size, in_size), in_size, hidden_size, rng))
            w_hh = Parameter(init.orthogonal((4 * hidden_size, hidden_size), rng))
            bias = Parameter(init.zeros((4 * hidden_size,)))
            self.register_parameter(f"w_ih_l{layer}", w_ih)
            self.register_parameter(f"w_hh_l{layer}", w_hh)
            self.register_parameter(f"bias_l{layer}", bias)
        self._caches: list[list[dict[str, np.ndarray]]] | None = None
        self._layer_inputs: list[np.ndarray] | None = None

    def _params(self, layer: int) -> tuple[Parameter, Parameter, Parameter]:
        return (
            self._parameters[f"w_ih_l{layer}"],
            self._parameters[f"w_hh_l{layer}"],
            self._parameters[f"bias_l{layer}"],
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, time, features), got shape {x.shape}")
        batch, time, _ = x.shape
        hidden = self.hidden_size
        self._caches = []
        self._layer_inputs = []

        layer_input = x
        for layer in range(self.num_layers):
            w_ih, w_hh, bias = self._params(layer)
            h = np.zeros((batch, hidden))
            c = np.zeros((batch, hidden))
            outputs = np.empty((batch, time, hidden))
            caches: list[dict[str, np.ndarray]] = []
            self._layer_inputs.append(layer_input)
            for t in range(time):
                x_t = layer_input[:, t, :]
                z = x_t @ w_ih.data.T + h @ w_hh.data.T + bias.data
                i_g = _sigmoid(z[:, :hidden])
                f_g = _sigmoid(z[:, hidden : 2 * hidden])
                g_g = np.tanh(z[:, 2 * hidden : 3 * hidden])
                o_g = _sigmoid(z[:, 3 * hidden :])
                c_new = f_g * c + i_g * g_g
                tanh_c = np.tanh(c_new)
                h_new = o_g * tanh_c
                caches.append(
                    {
                        "x": x_t,
                        "h_prev": h,
                        "c_prev": c,
                        "i": i_g,
                        "f": f_g,
                        "g": g_g,
                        "o": o_g,
                        "c": c_new,
                        "tanh_c": tanh_c,
                    }
                )
                h, c = h_new, c_new
                outputs[:, t, :] = h
            self._caches.append(caches)
            layer_input = outputs
        return layer_input

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._caches is None or self._layer_inputs is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        hidden = self.hidden_size
        grad_layer_output = grad_output

        for layer in reversed(range(self.num_layers)):
            w_ih, w_hh, bias = self._params(layer)
            caches = self._caches[layer]
            layer_input = self._layer_inputs[layer]
            batch, time, in_size = layer_input.shape

            grad_input = np.zeros((batch, time, in_size))
            grad_h_next = np.zeros((batch, hidden))
            grad_c_next = np.zeros((batch, hidden))
            for t in reversed(range(time)):
                cache = caches[t]
                grad_h = grad_layer_output[:, t, :] + grad_h_next
                grad_o = grad_h * cache["tanh_c"]
                grad_c = grad_h * cache["o"] * (1.0 - cache["tanh_c"] ** 2) + grad_c_next
                grad_i = grad_c * cache["g"]
                grad_g = grad_c * cache["i"]
                grad_f = grad_c * cache["c_prev"]
                grad_c_next = grad_c * cache["f"]

                dz = np.concatenate(
                    [
                        grad_i * cache["i"] * (1.0 - cache["i"]),
                        grad_f * cache["f"] * (1.0 - cache["f"]),
                        grad_g * (1.0 - cache["g"] ** 2),
                        grad_o * cache["o"] * (1.0 - cache["o"]),
                    ],
                    axis=1,
                )
                w_ih.grad += dz.T @ cache["x"]
                w_hh.grad += dz.T @ cache["h_prev"]
                bias.grad += dz.sum(axis=0)
                grad_input[:, t, :] = dz @ w_ih.data
                grad_h_next = dz @ w_hh.data
            grad_layer_output = grad_input
        return grad_layer_output
