"""Dense layers, activations and containers with explicit forward/backward."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), in_features, rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        self.weight.grad += grad_output.T @ x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-x))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Dropout(Module):
    """Inverted dropout; disabled in eval mode."""

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self._rng.uniform(size=x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Module):
    """Flatten every dimension after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: list[Module] = []
        for idx, module in enumerate(modules):
            self.register_module(str(idx), module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._ordered)), module)
        self._ordered.append(module)
        return self

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, idx: int) -> Module:
        return self._ordered[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self._ordered:
            x = module(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self._ordered):
            grad_output = module.backward(grad_output)
        return grad_output
