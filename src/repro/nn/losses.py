"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    ``logits`` may be ``(N, C)`` for classification or ``(N, T, C)`` for
    sequence models; ``targets`` holds integer class ids with the matching
    leading shape.  The gradient is averaged over every prediction (batch and
    time), matching the per-example averaging of the optimisers in Appendix A.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[:-1] != targets.shape:
        raise ValueError(f"targets shape {targets.shape} does not match logits {logits.shape[:-1]}")
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)
    if flat_targets.min() < 0 or flat_targets.max() >= num_classes:
        raise ValueError("target class id out of range")
    probs = softmax(flat_logits)
    n = flat_targets.size
    nll = -np.log(np.maximum(probs[np.arange(n), flat_targets], 1e-300))
    loss = float(nll.mean())
    grad = probs
    grad[np.arange(n), flat_targets] -= 1.0
    grad /= n
    return loss, grad.reshape(logits.shape)


def mse(predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient with respect to the predictions."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy for classification logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    preds = logits.argmax(axis=-1)
    return float(np.mean(preds.reshape(-1) == targets.reshape(-1)))


def perplexity(loss: float) -> float:
    """Perplexity from a mean cross-entropy loss (the PTB quality metric)."""
    return float(np.exp(min(loss, 700.0)))
