"""Weight initializers for the NumPy DNN substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation (for ReLU networks)."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (used for recurrent weight matrices)."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return gain * q


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
