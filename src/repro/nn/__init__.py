"""NumPy DNN substrate: modules, layers, losses and proxy models."""

from .conv import Conv2d, GlobalAvgPool2d, MaxPool2d, ResidualBlock
from .layers import Dropout, Flatten, Linear, ReLU, Sequential, Sigmoid, Tanh
from .losses import accuracy, cross_entropy, mse, perplexity, softmax
from .models import (
    CNNClassifier,
    LSTMLanguageModel,
    LSTMSequenceClassifier,
    MLPClassifier,
    ResNetProxy,
    build_model,
)
from .module import Module, Parameter
from .rnn import LSTM, Embedding

__all__ = [
    "CNNClassifier",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2d",
    "LSTM",
    "LSTMLanguageModel",
    "LSTMSequenceClassifier",
    "Linear",
    "MLPClassifier",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "ResNetProxy",
    "ResidualBlock",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "accuracy",
    "build_model",
    "cross_entropy",
    "mse",
    "perplexity",
    "softmax",
]
