"""Convolutional layers (im2col based) and the residual block used by the CNN proxies."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into columns of shape ``(N, out_h, out_w, C * k * k)``."""
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold column gradients back to the padded input and crop the padding."""
    n, c, h, w = input_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=np.float64)
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    for i in range(kernel):
        for j in range(kernel):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[:, :, :, :, i, j].transpose(
                0, 3, 1, 2
            )
    if padding:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


class Conv2d(Module):
    """2-D convolution with square kernels, implemented via im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal((out_channels, fan_in), fan_in, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._input_shape = x.shape
        out = cols @ self.weight.data.T  # (N, out_h, out_w, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output.transpose(0, 2, 3, 1)  # (N, out_h, out_w, out_channels)
        n, out_h, out_w, _ = grad.shape
        grad_2d = grad.reshape(-1, self.out_channels)
        cols_2d = self._cols.reshape(-1, self._cols.shape[-1])
        self.weight.grad += grad_2d.T @ cols_2d
        if self.bias is not None:
            self.bias.grad += grad_2d.sum(axis=0)
        grad_cols = grad_2d @ self.weight.data
        grad_cols = grad_cols.reshape(n, out_h, out_w, -1)
        return _col2im(grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding)


class MaxPool2d(Module):
    """Non-overlapping max pooling with square windows."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._argmax: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"input spatial dims ({h}x{w}) must be divisible by kernel_size {k}")
        self._input_shape = x.shape
        reshaped = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // k, w // k, k * k)
        self._argmax = reshaped.argmax(axis=-1)
        return reshaped.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        k = self.kernel_size
        out_h, out_w = h // k, w // k
        grad_windows = np.zeros((n, c, out_h, out_w, k * k), dtype=np.float64)
        idx = np.indices((n, c, out_h, out_w))
        grad_windows[idx[0], idx[1], idx[2], idx[3], self._argmax] = grad_output
        grad = grad_windows.reshape(n, c, out_h, out_w, k, k).transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return grad


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        return np.broadcast_to(grad_output[:, :, None, None], (n, c, h, w)) / (h * w)


class ResidualBlock(Module):
    """Two 3x3 convolutions with a ReLU and an identity skip connection.

    The channel count is preserved so the skip needs no projection — enough to
    give the ResNet proxy genuinely residual gradient structure without the
    full batch-norm machinery.
    """

    def __init__(self, channels: int, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(channels, channels, 3, 1, 1, rng=rng)
        self.conv2 = Conv2d(channels, channels, 3, 1, 1, rng=rng)
        self._relu_mask1: np.ndarray | None = None
        self._relu_mask_out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.conv1(x)
        self._relu_mask1 = h > 0.0
        h = h * self._relu_mask1
        h = self.conv2(h)
        out = h + x
        self._relu_mask_out = out > 0.0
        return out * self._relu_mask_out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._relu_mask1 is None or self._relu_mask_out is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * self._relu_mask_out
        grad_branch = self.conv2.backward(grad)
        grad_branch = grad_branch * self._relu_mask1
        grad_branch = self.conv1.backward(grad_branch)
        return grad_branch + grad
