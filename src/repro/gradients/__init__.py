"""Gradient synthesis and capture utilities."""

from .capture import GradientCapture
from .synthetic import (
    MODEL_DIMENSIONS,
    SYNTHETIC_TENSOR_SIZES,
    double_gamma_gradient,
    double_gpareto_gradient,
    evolving_gradients,
    laplace_gradient,
    model_sized_gradient,
    realistic_gradient,
    sid_gradient,
)

__all__ = [
    "MODEL_DIMENSIONS",
    "SYNTHETIC_TENSOR_SIZES",
    "GradientCapture",
    "double_gamma_gradient",
    "double_gpareto_gradient",
    "evolving_gradients",
    "laplace_gradient",
    "model_sized_gradient",
    "realistic_gradient",
    "sid_gradient",
]
