"""Synthetic gradient generators.

The micro-benchmarks (Figures 1, 16, 17) and many unit/property tests need
gradient-like vectors with controllable statistics: SID-distributed vectors
(Laplace / double gamma / double GP), mixtures that are deliberately *not* any
single SID, and vectors sized like the real models in Table 1.  Generating
them synthetically exercises exactly the code path the paper's compressors
see — a flat float vector — without requiring the real training frameworks.
"""

from __future__ import annotations

import numpy as np

from ..stats.distributions import DoubleGamma, DoubleGeneralizedPareto, Laplace

#: Parameter counts of the models in Table 1 (used for model-sized vectors).
MODEL_DIMENSIONS: dict[str, int] = {
    "resnet20": 269_467,
    "vgg16": 14_982_987,
    "resnet50": 25_559_081,
    "vgg19": 143_671_337,
    "lstm-ptb": 66_034_000,
    "lstm-an4": 43_476_256,
}

#: Synthetic tensor sizes of Figures 16/17 (0.26M, 2.6M, 26M, 260M elements).
SYNTHETIC_TENSOR_SIZES: tuple[int, ...] = (260_000, 2_600_000, 26_000_000, 260_000_000)


def laplace_gradient(size: int, scale: float = 1e-3, *, seed: int | None = None) -> np.ndarray:
    """Gradient drawn from a zero-centred Laplace (double exponential) SID."""
    rng = np.random.default_rng(seed)
    return Laplace(scale=scale).sample(size, rng)


def double_gamma_gradient(
    size: int, shape: float = 0.5, scale: float = 1e-3, *, seed: int | None = None
) -> np.ndarray:
    """Gradient drawn from a symmetric gamma SID (``shape < 1`` gives extra peakedness)."""
    rng = np.random.default_rng(seed)
    return DoubleGamma(shape=shape, scale=scale).sample(size, rng)


def double_gpareto_gradient(
    size: int, shape: float = 0.2, scale: float = 1e-3, *, seed: int | None = None
) -> np.ndarray:
    """Gradient drawn from a symmetric generalized Pareto SID (heavy tailed for ``shape > 0``)."""
    rng = np.random.default_rng(seed)
    return DoubleGeneralizedPareto(shape=shape, scale=scale).sample(size, rng)


def sid_gradient(sid: str, size: int, *, seed: int | None = None, **params) -> np.ndarray:
    """Dispatch to one of the SID generators by name (``exponential``/``gamma``/``gpareto``)."""
    if sid == "exponential":
        return laplace_gradient(size, seed=seed, **params)
    if sid == "gamma":
        return double_gamma_gradient(size, seed=seed, **params)
    if sid == "gpareto":
        return double_gpareto_gradient(size, seed=seed, **params)
    raise ValueError(f"unknown SID {sid!r}")


def realistic_gradient(
    size: int,
    *,
    sparsity: float = 0.9,
    bulk_scale: float = 1e-4,
    tail_scale: float = 5e-3,
    seed: int | None = None,
) -> np.ndarray:
    """Gradient mimicking the empirical shape of DNN gradients (Figure 2).

    A two-component mixture: a dominant near-zero bulk (fraction ``sparsity``)
    with small Laplace scale and a heavier-tailed Laplace component carrying
    the informative coordinates.  The result is compressible in the sense of
    Definition 1 but is *not* exactly any single SID, which is the situation
    the multi-stage estimator is designed for.
    """
    if not 0.0 < sparsity < 1.0:
        raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
    rng = np.random.default_rng(seed)
    is_bulk = rng.uniform(size=size) < sparsity
    bulk = rng.laplace(0.0, bulk_scale, size=size)
    tail = rng.laplace(0.0, tail_scale, size=size)
    return np.where(is_bulk, bulk, tail)


def model_sized_gradient(model: str, *, seed: int | None = None, max_elements: int | None = None) -> np.ndarray:
    """A realistic gradient with the dimension of one of the Table 1 models.

    ``max_elements`` caps the materialised size (simulation hosts cannot
    allocate a 143M-element float64 vector per compressor per benchmark trial);
    the cap only affects memory, not the statistics, because the generator is
    i.i.d. across coordinates.
    """
    key = model.lower()
    if key not in MODEL_DIMENSIONS:
        raise ValueError(f"unknown model {model!r}; known: {sorted(MODEL_DIMENSIONS)}")
    size = MODEL_DIMENSIONS[key]
    if max_elements is not None:
        size = min(size, max_elements)
    return realistic_gradient(size, seed=seed)


def evolving_gradients(
    size: int,
    iterations: int,
    *,
    initial_scale: float = 1e-2,
    final_scale: float = 1e-4,
    sparsity_growth: float = 0.5,
    seed: int | None = None,
) -> list[np.ndarray]:
    """A sequence of gradients whose sparsity increases over "training".

    Mirrors the evolution shown in Figure 2 (iteration 10000 is sparser than
    iteration 100): the overall scale shrinks geometrically and the fraction
    of near-zero coordinates grows.  Used to exercise the stage-adaptation
    logic and the capture/fit diagnostics deterministically.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    rng = np.random.default_rng(seed)
    out: list[np.ndarray] = []
    for i in range(iterations):
        frac = i / max(iterations - 1, 1)
        scale = initial_scale * (final_scale / initial_scale) ** frac
        sparsity = 0.5 + sparsity_growth * frac * 0.98
        sparsity = min(sparsity, 0.995)
        is_bulk = rng.uniform(size=size) < sparsity
        bulk = rng.laplace(0.0, scale * 0.05, size=size)
        tail = rng.laplace(0.0, scale, size=size)
        out.append(np.where(is_bulk, bulk, tail))
    return out
