"""Gradient capture during (simulated) training.

Figures 2, 7 and 8 of the paper are produced by collecting the *uncompressed*
gradient vector from one worker at selected iterations and studying its
distribution and compressibility.  ``GradientCapture`` is a small hook object
the distributed trainer calls every iteration; it snapshots the gradient
(optionally L2-normalised, as the paper does for visual comparison across
iterations) at the requested iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GradientCapture:
    """Collects gradient snapshots at chosen training iterations.

    Parameters
    ----------
    iterations:
        Iteration indices (0-based) at which to snapshot.  ``None`` captures
        every iteration (use only for short runs).
    normalize:
        Divide each snapshot by its L2 norm, as done in Appendix B.2 to make
        distributions comparable across iterations.
    max_elements:
        Optional cap on the stored vector length (a random but fixed subset of
        coordinates), to bound memory for large models.
    """

    iterations: set[int] | None = None
    normalize: bool = True
    max_elements: int | None = None
    seed: int = 0
    snapshots: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._subset: np.ndarray | None = None
        self._rng = np.random.default_rng(self.seed)

    def wants(self, iteration: int) -> bool:
        """Whether this capture is interested in ``iteration``."""
        return self.iterations is None or iteration in self.iterations

    def record(self, iteration: int, gradient: np.ndarray) -> None:
        """Snapshot ``gradient`` if ``iteration`` is one of the requested ones."""
        if not self.wants(iteration):
            return
        vec = np.asarray(gradient, dtype=np.float64).ravel()
        if self.max_elements is not None and vec.size > self.max_elements:
            if self._subset is None or self._subset.size != self.max_elements:
                self._subset = self._rng.choice(vec.size, size=self.max_elements, replace=False)
            vec = vec[self._subset]
        if self.normalize:
            norm = float(np.linalg.norm(vec))
            if norm > 0.0:
                vec = vec / norm
        self.snapshots[iteration] = vec.copy()

    def get(self, iteration: int) -> np.ndarray:
        """Return the snapshot captured at ``iteration``."""
        if iteration not in self.snapshots:
            raise KeyError(f"no snapshot captured at iteration {iteration}")
        return self.snapshots[iteration]

    @property
    def captured_iterations(self) -> list[int]:
        return sorted(self.snapshots)
